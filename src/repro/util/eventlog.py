"""Structured event log.

Every interesting thing that happens in a simulation — a message send, a bid,
a dispatch, a migration, a crash — is appended here as a :class:`LogRecord`.
The metrics layer (``repro.metrics``) derives utilization, makespan, message
counts, and wait-time statistics purely from this log, which keeps the
instrumented components free of metrics logic.

Two properties matter at scale:

- **Query cost.** ``records(category=...)``, ``count``, ``first``, and
  ``last`` are served from a per-category index maintained on ``emit``, so
  re-deriving metrics on a long run no longer rescans the whole log per
  query. Prefix queries (``"sched."``) merge the per-category position
  lists of the matching categories.
- **Bounded memory.** ``set_bounded(n)`` switches the log to a ring buffer
  of the last *n* records while per-category counters and first/last
  records stay exact for the whole run — throughput benchmarks keep their
  memory flat without blinding the metrics and telemetry layers
  (``n=0`` keeps counters only; the historical ``disable()`` alias has
  been removed).
- **Live observers.** ``add_observer(fn)`` registers a callback invoked
  with every stored-or-ring-buffered record at emit time, in the kernel's
  deterministic event order.  This is the push seam the control plane's
  :class:`~repro.controlplane.SubscriptionHub` taps: observers only read,
  so attaching one never changes what the log stores — replay digests are
  observer-invariant.  Suppressed categories never reach observers (no
  record object exists for them).
- **Emit cost.** ``suppress(prefix, ...)`` turns matching categories into a
  counter increment — no record object, no payload formatting.  Emitters
  with expensive payloads can pass callables as data values; they are
  invoked only when the record is actually stored, so a suppressed
  category costs near zero even at chatty call sites.  Suppression changes
  which records exist, so never enable it in a run whose replay digest is
  compared against an unsuppressed one.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator


@dataclass(frozen=True, slots=True)
class LogRecord:
    """One timestamped event.

    Attributes:
        time: simulation time (seconds) at which the event occurred.
        category: dotted event kind, e.g. ``"sched.bid"`` or ``"task.done"``.
        source: name of the emitting component (host, daemon, task id...).
        data: free-form payload; keys are event-kind specific.
    """

    time: float
    category: str
    source: str
    data: dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)


class EventLog:
    """An append-only list of :class:`LogRecord` with query helpers.

    Args:
        capacity: None (default) stores every record; an integer keeps only
            the last *capacity* records (see :meth:`set_bounded`).
    """

    def __init__(self, capacity: int | None = None) -> None:
        self._records: list[LogRecord] = []
        self._ring: deque[LogRecord] | None = None
        # always-exact per-category state, maintained in every mode:
        self._counts: dict[str, int] = {}
        self._first: dict[str, LogRecord] = {}
        self._last: dict[str, LogRecord] = {}
        # full-mode index: category -> positions in self._records
        self._index: dict[str, list[int]] = {}
        # category prefixes whose emits are counted but not stored
        self._suppressed: tuple[str, ...] = ()
        # push subscribers, called with each surviving record at emit time
        self._observers: list[Callable[[LogRecord], None]] = []
        if capacity is not None:
            self.set_bounded(capacity)

    # -- writing -----------------------------------------------------------

    def emit(self, time: float, category: str, source: str, **data: Any) -> None:
        """Append a record (kept whole, ring-buffered, or counted-only
        depending on the mode — see module docstring).

        Payload values may be zero-argument callables: they are resolved here,
        and only when the record survives suppression — chatty emitters can
        defer expensive formatting (member lists, repr-heavy summaries) behind
        a lambda and pay nothing while their category is suppressed.
        """
        counts = self._counts
        suppressed = self._suppressed
        if suppressed and category.startswith(suppressed):
            counts[category] = counts.get(category, 0) + 1
            return
        for key, value in data.items():
            if callable(value):
                data[key] = value()
        record = LogRecord(time, category, source, data)
        counts[category] = counts.get(category, 0) + 1
        if category not in self._first:
            self._first[category] = record
        self._last[category] = record
        if self._observers:
            for observer in self._observers:
                observer(record)
        if self._ring is not None:
            if self._ring.maxlen != 0:
                self._ring.append(record)
            return
        self._index.setdefault(category, []).append(len(self._records))
        self._records.append(record)

    def add_observer(self, observer: Callable[[LogRecord], None]) -> None:
        """Call *observer* with every surviving record at emit time, in
        emission (kernel ``(time, seq)``) order.  Observers see records in
        every storage mode — including a ``set_bounded(0)`` counters-only
        log — but never suppressed categories.  Observers must only read;
        they run inside the hot emit path."""
        if observer not in self._observers:
            self._observers.append(observer)

    def remove_observer(self, observer: Callable[[LogRecord], None]) -> None:
        """Detach *observer* (no-op when it was never attached)."""
        if observer in self._observers:
            self._observers.remove(observer)

    def suppress(self, *prefixes: str) -> None:
        """Stop storing records whose category starts with any of *prefixes*.

        Suppressed categories keep exact :meth:`count` totals (one dict
        increment per emit) but produce no records and no first/last — the
        near-zero-cost mode for categories a run does not care about.  Each
        prefix matches as a plain string prefix (``"isis.hb"`` also matches
        ``"isis.hbx"``); pass dotted prefixes like ``"isis."`` to scope to a
        subsystem.
        """
        self._suppressed = tuple(dict.fromkeys(self._suppressed + prefixes))

    def unsuppress(self) -> None:
        """Store every category again (counts taken while suppressed remain)."""
        self._suppressed = ()

    @property
    def suppressed(self) -> tuple[str, ...]:
        return self._suppressed

    def enabled(self, category: str) -> bool:
        """True when emits for *category* are stored (O(#prefixes))."""
        suppressed = self._suppressed
        return not (suppressed and category.startswith(suppressed))

    def set_bounded(self, capacity: int) -> None:
        """Keep only the last *capacity* records from now on.

        Per-category counts and first/last records remain exact for the
        whole run regardless of capacity (``capacity=0`` keeps counters
        only). Already-stored records seed the ring.
        """
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        existing: Iterable[LogRecord] = (
            self._ring if self._ring is not None else self._records
        )
        self._ring = deque(existing, maxlen=capacity)
        self._records = []
        self._index = {}

    def set_unbounded(self) -> None:
        """Return to storing every record (ring contents are kept and the
        index is rebuilt over them)."""
        if self._ring is None:
            return
        kept = list(self._ring)
        self._ring = None
        self._records = []
        self._index = {}
        for record in kept:
            self._index.setdefault(record.category, []).append(len(self._records))
            self._records.append(record)

    @property
    def bounded(self) -> bool:
        return self._ring is not None

    @property
    def capacity(self) -> int | None:
        return self._ring.maxlen if self._ring is not None else None

    # -- reading -----------------------------------------------------------

    def _stored(self) -> Iterable[LogRecord]:
        return self._ring if self._ring is not None else self._records

    def __len__(self) -> int:
        return len(self._ring) if self._ring is not None else len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._stored())

    def _category_records(self, category: str) -> Iterable[LogRecord]:
        """Stored records matching *category* exactly, or as a prefix when
        it ends with ``"."`` — via the index in full mode."""
        if self._ring is not None:
            if category.endswith("."):
                return (r for r in self._ring if r.category.startswith(category))
            return (r for r in self._ring if r.category == category)
        if category.endswith("."):
            lists = [
                positions
                for cat, positions in self._index.items()
                if cat.startswith(category)
            ]
            if not lists:
                return ()
            if len(lists) == 1:
                positions: Iterable[int] = lists[0]
            else:
                positions = heapq.merge(*lists)
            return (self._records[i] for i in positions)
        return (self._records[i] for i in self._index.get(category, ()))

    def records(
        self,
        category: str | None = None,
        source: str | None = None,
        predicate: Callable[[LogRecord], bool] | None = None,
        since: float | None = None,
        until: float | None = None,
    ) -> list[LogRecord]:
        """Filtered view of the log.

        ``category`` matches exactly, or as a prefix when it ends with
        ``"."`` (so ``"sched."`` selects every scheduler event). In bounded
        mode only the retained ring is visible.
        """
        out: Iterable[LogRecord]
        if category is not None:
            out = self._category_records(category)
        else:
            out = self._stored()
        if source is not None:
            out = (r for r in out if r.source == source)
        if since is not None:
            out = (r for r in out if r.time >= since)
        if until is not None:
            out = (r for r in out if r.time <= until)
        if predicate is not None:
            out = (r for r in out if predicate(r))
        return list(out)

    def count(self, category: str) -> int:
        """Exact number of records ever emitted for *category* (or prefix),
        including any evicted from a bounded ring."""
        if category.endswith("."):
            return sum(
                n for cat, n in self._counts.items() if cat.startswith(category)
            )
        return self._counts.get(category, 0)

    def first(self, category: str) -> LogRecord | None:
        """First record ever emitted for *category* (exact in every mode).
        Prefix queries pick the earliest first-record among matches."""
        if category.endswith("."):
            matches = [
                r for cat, r in self._first.items() if cat.startswith(category)
            ]
            return min(matches, key=lambda r: r.time, default=None)
        return self._first.get(category)

    def last(self, category: str) -> LogRecord | None:
        """Last record ever emitted for *category* (exact in every mode)."""
        if category.endswith("."):
            matches = [
                r for cat, r in self._last.items() if cat.startswith(category)
            ]
            return max(matches, key=lambda r: r.time, default=None)
        return self._last.get(category)

    def category_counts(self) -> dict[str, int]:
        """Exact per-category emission counts for the whole run."""
        return dict(self._counts)

    def clear(self) -> None:
        self._records.clear()
        self._index.clear()
        self._counts.clear()
        self._first.clear()
        self._last.clear()
        if self._ring is not None:
            self._ring.clear()
