"""Structured event log.

Every interesting thing that happens in a simulation — a message send, a bid,
a dispatch, a migration, a crash — is appended here as a :class:`LogRecord`.
The metrics layer (``repro.metrics``) derives utilization, makespan, message
counts, and wait-time statistics purely from this log, which keeps the
instrumented components free of metrics logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator


@dataclass(frozen=True, slots=True)
class LogRecord:
    """One timestamped event.

    Attributes:
        time: simulation time (seconds) at which the event occurred.
        category: dotted event kind, e.g. ``"sched.bid"`` or ``"task.done"``.
        source: name of the emitting component (host, daemon, task id...).
        data: free-form payload; keys are event-kind specific.
    """

    time: float
    category: str
    source: str
    data: dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)


class EventLog:
    """An append-only list of :class:`LogRecord` with query helpers."""

    def __init__(self) -> None:
        self._records: list[LogRecord] = []
        self._enabled = True

    # -- writing -----------------------------------------------------------

    def emit(self, time: float, category: str, source: str, **data: Any) -> None:
        """Append a record (no-op when the log is disabled)."""
        if self._enabled:
            self._records.append(LogRecord(time, category, source, data))

    def disable(self) -> None:
        """Stop recording (used by throughput-focused benchmarks)."""
        self._enabled = False

    def enable(self) -> None:
        self._enabled = True

    # -- reading -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    def records(
        self,
        category: str | None = None,
        source: str | None = None,
        predicate: Callable[[LogRecord], bool] | None = None,
        since: float | None = None,
        until: float | None = None,
    ) -> list[LogRecord]:
        """Filtered view of the log.

        ``category`` matches exactly, or as a prefix when it ends with
        ``"."`` (so ``"sched."`` selects every scheduler event).
        """
        out: Iterable[LogRecord] = self._records
        if category is not None:
            if category.endswith("."):
                out = (r for r in out if r.category.startswith(category))
            else:
                out = (r for r in out if r.category == category)
        if source is not None:
            out = (r for r in out if r.source == source)
        if since is not None:
            out = (r for r in out if r.time >= since)
        if until is not None:
            out = (r for r in out if r.time <= until)
        if predicate is not None:
            out = (r for r in out if predicate(r))
        return list(out)

    def count(self, category: str) -> int:
        return len(self.records(category=category))

    def first(self, category: str) -> LogRecord | None:
        matches = self.records(category=category)
        return matches[0] if matches else None

    def last(self, category: str) -> LogRecord | None:
        matches = self.records(category=category)
        return matches[-1] if matches else None

    def clear(self) -> None:
        self._records.clear()
