"""Exception hierarchy for the VCE reproduction.

Every error raised by the library derives from :class:`VCEError` so callers
can catch library failures with a single ``except`` clause while still being
able to discriminate by subsystem.
"""

from __future__ import annotations


class VCEError(Exception):
    """Base class of every exception raised by the ``repro`` library."""


class ConfigurationError(VCEError):
    """An invalid configuration value or inconsistent component wiring."""


class AllocationError(VCEError):
    """The bidding protocol could not allocate the requested resources.

    Mirrors the ``returnAllocError`` path in the paper's group-leader
    pseudocode: a group leader received fewer usable bids than the request
    needed.
    """

    def __init__(self, message: str, *, requested: int = 0, available: int = 0):
        super().__init__(message)
        self.requested = requested
        self.available = available


class CompilationError(VCEError):
    """No compiler exists for a (language, architecture) pair, or a compile
    job failed."""


class MigrationError(VCEError):
    """A process-migration scheme could not move a task (e.g. the
    address-space-dump scheme was asked to cross heterogeneous machines)."""


class CommunicationError(VCEError):
    """Channel/port misuse: unknown channel, port direction mismatch,
    detached endpoint, or marshalling failure."""


class ScriptError(VCEError):
    """Syntax or semantic error in a VCE application-description script."""

    def __init__(self, message: str, *, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column}" if column is not None else "") + ")"
        super().__init__(message + location)
        self.line = line
        self.column = column


class TaskGraphError(VCEError):
    """Structural problem in a task graph (cycle, duplicate node, dangling
    arc) or a missing annotation required by a downstream SDM/EXM layer."""


class VerificationError(VCEError):
    """A static pre-dispatch check rejected an application.

    Raised by the task-graph verifier (``repro.analysis``) when a graph
    contains error-severity findings and verification is ``strict``. The
    offending :class:`~repro.analysis.report.AnalysisReport` rides along
    as :attr:`report` so callers can render or export the findings.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class MembershipError(VCEError):
    """Illegal process-group operation (joining twice, multicasting before
    joining, replying outside a request context)."""


class SimulationError(VCEError):
    """Internal inconsistency in the discrete-event kernel (time moving
    backwards, events scheduled on a stopped simulator)."""
