"""MPI collectives as generator subroutines over Send/Recv.

Each function is used with ``yield from`` inside a task program and
composes only the two point-to-point syscalls, exactly as an MPI library
layered on a channel transport would. Broadcast, reduce, and their
composites use binomial trees, giving the O(log p) step counts a real MPI
implementation shows (benchmark E12 measures this scaling).

All collectives here are over a task's own communicator (its sibling
instances); ``ctx`` supplies ``rank`` and ``size``.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, TypeVar

from repro.vmpi.api import Recv, Send

T = TypeVar("T")

_SysGen = Generator[Any, Any, Any]


def bcast(ctx: Any, data: T = None, root: int = 0, size: int = 256) -> _SysGen:
    """Binomial-tree broadcast; every rank returns root's *data*."""
    p, me = ctx.size, ctx.rank
    vrank = (me - root) % p  # virtual rank: root at 0
    if vrank != 0:
        src, got = yield Recv(tag="__bcast__")
        data = got
    mask = 1
    while mask < p:
        if vrank < mask:
            child = vrank + mask
            if child < p:
                yield Send(dst=(child + root) % p, data=data, tag="__bcast__", size=size)
        mask <<= 1
    return data


def reduce(
    ctx: Any,
    value: T,
    op: Callable[[list[T]], T],
    root: int = 0,
    size: int = 256,
) -> _SysGen:
    """Binomial-tree reduction; *op* combines a list of partial values.

    Returns the reduced value at *root*, None elsewhere.
    """
    p, me = ctx.size, ctx.rank
    vrank = (me - root) % p
    acc = value
    mask = 1
    while mask < p:
        if vrank & mask:
            parent = vrank - mask
            yield Send(dst=(parent + root) % p, data=acc, tag="__reduce__", size=size)
            return None
        child = vrank + mask
        if child < p:
            _, got = yield Recv(tag="__reduce__")
            acc = op([acc, got])
        mask <<= 1
    return acc if me == root else None


def allreduce(ctx: Any, value: T, op: Callable[[list[T]], T], size: int = 256) -> _SysGen:
    """reduce-to-0 then broadcast; every rank returns the reduced value."""
    partial = yield from reduce(ctx, value, op, root=0, size=size)
    total = yield from bcast(ctx, partial, root=0, size=size)
    return total


def barrier(ctx: Any) -> _SysGen:
    """Dissemination-free simple barrier: reduce then broadcast a token."""
    yield from allreduce(ctx, 0, op=lambda xs: 0, size=32)
    return None


def scatter(ctx: Any, items: list[T] | None, root: int = 0, size: int = 256) -> _SysGen:
    """Root holds ``items`` (one per rank); every rank returns its element.

    Linear scatter (root sends p-1 messages), matching simple MPI
    implementations.
    """
    p, me = ctx.size, ctx.rank
    if me == root:
        assert items is not None and len(items) == p, "scatter needs one item per rank"
        for r in range(p):
            if r != root:
                yield Send(dst=r, data=items[r], tag="__scatter__", size=size)
        return items[root]
    _, got = yield Recv(src=root, tag="__scatter__")
    return got


def gather(ctx: Any, value: T, root: int = 0, size: int = 256) -> _SysGen:
    """Inverse of scatter: root returns the rank-indexed list, others None."""
    p, me = ctx.size, ctx.rank
    if me != root:
        yield Send(dst=root, data=(me, value), tag="__gather__", size=size)
        return None
    out: list[Any] = [None] * p
    out[root] = value
    for _ in range(p - 1):
        _, (rank, got) = yield Recv(tag="__gather__")
        out[rank] = got
    return out


def allgather(ctx: Any, value: T, size: int = 256) -> _SysGen:
    """gather-to-0 then broadcast of the full list."""
    collected = yield from gather(ctx, value, root=0, size=size)
    out = yield from bcast(ctx, collected, root=0, size=size)
    return out


def sendrecv(
    ctx: Any,
    dst: int,
    send_value: T,
    src: int,
    tag: str = "__sendrecv__",
    size: int = 256,
) -> _SysGen:
    """Combined send+receive — the deadlock-free neighbour-exchange
    primitive (MPI_Sendrecv). Sends *send_value* to *dst* and returns the
    value received from *src*."""
    yield Send(dst=dst, data=send_value, tag=tag, size=size)
    _, got = yield Recv(src=src, tag=tag)
    return got


def alltoall(ctx: Any, items: list[T], size: int = 256) -> _SysGen:
    """Personalized all-to-all: rank *i* sends ``items[j]`` to rank *j* and
    returns the list whose *j*-th element came from rank *j* — the global
    transpose of the send matrix.

    Linear implementation: p-1 sends then p-1 receives (self-exchange is
    local)."""
    p, me = ctx.size, ctx.rank
    assert len(items) == p, "alltoall needs one item per rank"
    out: list[Any] = [None] * p
    out[me] = items[me]
    for r in range(p):
        if r != me:
            yield Send(dst=r, data=(me, items[r]), tag="__alltoall__", size=size)
    for _ in range(p - 1):
        _, (sender, value) = yield Recv(tag="__alltoall__")
        out[sender] = value
    return out
