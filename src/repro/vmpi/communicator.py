"""Communicators and task contexts.

A :class:`Communicator` maps the integer ranks of one task's instances onto
receive ports of a channel, so MPI-style ``Send(dst=rank)`` resolves to a
directed channel send. The :class:`TaskContext` is the object handed to a
task program factory; it carries identity, parameters, and restored
checkpoint state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.util.errors import CommunicationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.channels.channel import Channel
    from repro.trace.context import TraceContext


class Communicator:
    """Rank ↔ port bookkeeping over one channel.

    Rank *r* of task *t* owns the receive port named ``"r"`` on the task's
    MPI channel. The executor attaches/rebinds ports as instances are
    placed and migrated.
    """

    def __init__(self, channel: "Channel", size: int) -> None:
        if size < 1:
            raise CommunicationError("communicator size must be >= 1")
        self.channel = channel
        self.size = size

    def port_name(self, rank: int) -> str:
        if not 0 <= rank < self.size:
            raise CommunicationError(
                f"rank {rank} out of range for communicator of size {self.size}"
            )
        return str(rank)


@dataclass
class TaskContext:
    """Everything a task program knows about itself.

    Attributes:
        app: application id.
        task: task name.
        rank: this instance's index within the task (0-based).
        size: total instances of the task.
        params: application-level parameters (from the submitting user).
        restored_state: last checkpoint state when restarted from a
            checkpoint, else None — "may require the cooperation of the
            task involved" (§4.4): programs that want cheap checkpoint
            migration consult this and skip completed work.
    """

    app: str
    task: str
    rank: int = 0
    size: int = 1
    params: dict[str, Any] = field(default_factory=dict)
    restored_state: Any = None
    #: this incarnation's span in the application's trace; rides every
    #: channel send so receivers can log the causal sender
    trace: "TraceContext | None" = None

    @property
    def instance_name(self) -> str:
        return f"{self.app}.{self.task}.{self.rank}"
