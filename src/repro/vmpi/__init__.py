"""vMPI: the VCE's architecture-independent message-passing library.

"Communication between tasks will take place either through primitives
defined in the MPI or via object-oriented method invocation semantics. The
compilation manager will provide a number of different libraries that will
map MPI to communication tools available in the system." (§4.2)

Task programs are Python generators that *yield* syscall objects
(:mod:`repro.vmpi.api`); the runtime's task executor interprets them. On
top of the two point-to-point primitives (``Send``/``Recv``) this package
builds the MPI collectives as generator subroutines
(:mod:`repro.vmpi.collectives`) — use them with ``yield from``:

    def worker(ctx):
        yield Compute(ctx.params["chunk"])
        total = yield from allreduce(ctx, my_value, op=sum)

This is exactly the layering the paper describes: MPI primitives mapped
onto channels, so that "the runtime system will be able to monitor,
redirect, and move connections between tasks".
"""

from repro.vmpi.api import (
    ANY,
    Checkpoint,
    Compute,
    Emit,
    ReadFile,
    Recv,
    Send,
    Sleep,
    WriteFile,
)
from repro.vmpi.communicator import Communicator, TaskContext
from repro.vmpi.collectives import (
    allgather,
    allreduce,
    alltoall,
    barrier,
    bcast,
    gather,
    reduce,
    scatter,
    sendrecv,
)

__all__ = [
    "ANY",
    "Compute",
    "Send",
    "Recv",
    "Checkpoint",
    "Sleep",
    "Emit",
    "ReadFile",
    "WriteFile",
    "Communicator",
    "TaskContext",
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "scatter",
    "gather",
    "allgather",
    "alltoall",
    "sendrecv",
]
