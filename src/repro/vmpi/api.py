"""Runtime syscalls yielded by task programs.

A task program is a generator; each ``yield`` hands the executor one of
these objects and (for value-producing calls like :class:`Recv`) receives
the result back through ``generator.send``. The generator's ``return``
value becomes the task instance's result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Wildcard source for Recv: match a message from any sender.
ANY = None


@dataclass(frozen=True, slots=True)
class Compute:
    """Consume CPU: *work* work units (a speed-1.0 idle machine does one
    unit per second; background load and co-resident VCE tasks slow it
    down)."""

    work: float


@dataclass(frozen=True, slots=True)
class Send:
    """Send *data* to another task instance. Non-blocking (buffered).

    Attributes:
        dst: destination — an int rank (same task's MPI communicator) or a
            string port name on a named channel.
        data: payload.
        size: wire size in bytes.
        tag: match key for the receiver.
        channel: explicit channel name; None = this task's MPI communicator.
    """

    dst: int | str
    data: Any = None
    size: int = 256
    tag: str | None = None
    channel: str | None = None


@dataclass(frozen=True, slots=True)
class Recv:
    """Block until a matching message arrives; evaluates to
    ``(src, data)``.

    Attributes:
        src: int rank / str port to match, or :data:`ANY`.
        tag: tag to match, or None for any tag.
        channel: channel to listen on; None = the MPI communicator.
    """

    src: int | str | None = ANY
    tag: str | None = None
    channel: str | None = None


@dataclass(frozen=True, slots=True)
class Checkpoint:
    """Persist *state* to the checkpoint store ("migratable jobs checkpoint
    regularly", §4.4). Costs time proportional to *size*. The state comes
    back as ``ctx.restored_state`` after a checkpoint restart."""

    state: Any
    size: int = 1024


@dataclass(frozen=True, slots=True)
class Sleep:
    """Idle for *seconds* of simulation time (I/O waits, think time)."""

    seconds: float


@dataclass(frozen=True, slots=True)
class Emit:
    """Write a record to the run-wide event log."""

    category: str
    data: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class ReadFile:
    """Read a named input file. If the file is not on this machine it is
    fetched over the network first (costing transfer time) — the cost that
    anticipatory file replication (§4.5) removes."""

    name: str
    size: int = 1_000_000


@dataclass(frozen=True, slots=True)
class WriteFile:
    """Write a named output file onto the local machine."""

    name: str
    size: int = 1_000_000
