"""Real-network execution backend: the VCE off the simulator.

The netsim kernel runs the whole environment inside one process and one
event heap.  This package is the other half of ROADMAP item 3: the same
``scheduler.messages`` protocol, task graphs, trace contexts, failover
leases and chaos recipes, but with daemons and the execution program
running as *real* asyncio processes talking over TCP sockets on
localhost, paced by the wall clock instead of the tombstone heap.

Layout:

- :mod:`repro.netexec.codec` — length-prefixed, CRC-checked frames
  carrying restricted-pickle payloads (the scheduler message classes and
  the netexec control frames, nothing else).
- :mod:`repro.netexec.wallclock` — :class:`WallClockSimulator`, a
  :class:`~repro.netsim.backend.SimBackend` whose clock is real time
  scaled by a rate knob (reusing :class:`~repro.netsim.pacing.WallClockPacer`'s
  arithmetic), selected by ``VCEConfig(backend="network")``.
- :mod:`repro.netexec.transport` — the supervisor-side frame router and
  the daemon-side connection (connect-with-retry, reconnect).
- :mod:`repro.netexec.daemonhost` — the per-machine daemon process
  (``python -m repro.netexec.daemonhost``): bids on resource requests,
  runs task programs, reports results.
- :mod:`repro.netexec.supervisor` — :class:`NetworkVCE`: spawns the
  daemons, plays the execution-program/EXM role, enforces leases and
  exactly-once commits, maps chaos ``crash`` actions to real ``SIGKILL``.
- :mod:`repro.netexec.quickstart` — the 3-process localhost demo behind
  ``repro serve --backend network``; checks DONE-set and results-digest
  parity against the serial sim backend.

See docs/NETWORK.md for the determinism contract (what is and is not
digest-stable across the sim/network seam).
"""

from repro.netexec.supervisor import NetworkVCE
from repro.netexec.wallclock import WallClockSimulator

__all__ = ["NetworkVCE", "WallClockSimulator"]
