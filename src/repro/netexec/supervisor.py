"""The supervisor process: execution program + EXM over real sockets.

:class:`NetworkVCE` is the network backend's counterpart of
:class:`~repro.core.environment.VirtualComputingEnvironment`: it spawns
one :mod:`~repro.netexec.daemonhost` subprocess per machine, runs the
frame router they all connect to, and then plays the paper's execution
program / EXM role itself — the same flow
:class:`~repro.scheduler.execution_program.ExecutionProgram` and
:class:`~repro.runtime.manager.RuntimeManager` run under netsim:

1. send a :class:`ResourceRequest` to the leader daemon, await its
   :class:`AllocationReply` (the daemons run the real bidding round over
   the sockets);
2. place instances with the same
   :func:`~repro.scheduler.policies.load_sorted_assignment` policy;
3. dispatch :class:`TaskAssignment` frames respecting graph precedence,
   emitting ``runtime.dispatch``;
4. arm a failover **lease** per dispatch (on the wall-clock sim heap, so
   :class:`~repro.migration.failover.FailoverConfig` values keep their
   sim-seconds meaning, scaled by the backend rate); a dead daemon — EOF
   on its connection, or a lease that finds it gone — strands its
   allocations (``recovery.lease_expired`` / ``recovery.strand``) and
   re-dispatches at a bumped epoch (``recovery.redispatch``), refusing
   stale commits (``runtime.stale_commit``) for at-most-once completion;
5. chaos ``crash`` actions become real ``SIGKILL`` of the daemon
   subprocess; ``restart`` respawns it.

Every protocol event the daemons emit is forwarded into this process's
single :class:`EventLog`, so ``analysis.protocol.check_records`` verifies
the network run exactly as it verifies a simulated one.
"""

from __future__ import annotations

import asyncio
import hashlib
import os
import signal
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.config import VCEConfig
from repro.machines.archclass import MachineClass
from repro.machines.machine import Machine
from repro.migration.failover import FailoverConfig
from repro.netexec.daemonhost import build_workload
from repro.netexec.frames import (
    EXEC_ADDR,
    EmitRecord,
    Envelope,
    Heartbeat,
    Hello,
    Shutdown,
    TaskAssignment,
    TaskDone,
    TaskFailed,
    Welcome,
    WorkloadSpec,
)
from repro.netexec.transport import FrameRouter, TransportError
from repro.netsim.backend import create_simulator
from repro.netsim.host import Address
from repro.scheduler.messages import (
    AllocationError_,
    AllocationReply,
    ModuleNeed,
    ResourceRequest,
    TerminateNotice,
)
from repro.scheduler.policies import load_sorted_assignment
from repro.trace.context import TraceContext
from repro.util.errors import AllocationError, ConfigurationError

#: wall-seconds ceiling on daemon registration at boot
BOOT_TIMEOUT = 20.0
#: wall-seconds ceiling on one allocation round (request → reply)
ALLOC_TIMEOUT = 10.0


@dataclass
class _Record:
    """One (task, rank) allocation as the supervisor tracks it."""

    task: str
    rank: int
    host: str | None = None
    epoch: int = 0
    attempts: int = 0
    dispatched: bool = False
    done: bool = False
    failed: bool = False
    result: Any = None
    stranded_at: float | None = None


@dataclass
class NetworkApp:
    """One application run on the network backend."""

    id: str
    graph: Any
    trace: TraceContext
    records: dict[tuple[str, int], _Record] = field(default_factory=dict)
    finished: asyncio.Event = field(default_factory=asyncio.Event)
    failed: bool = False

    @property
    def done(self) -> bool:
        return all(r.done for r in self.records.values())

    def done_set(self) -> set[tuple[str, int]]:
        """The (task, rank) pairs that completed."""
        return {k for k, r in self.records.items() if r.done}

    def results_digest(self) -> str:
        """Order-independent digest of per-task results — the half of the
        determinism contract that must match the sim backend."""
        h = hashlib.sha256()
        for (task, rank), record in sorted(self.records.items()):
            h.update(f"{task}:{rank}:{record.result!r}\n".encode())
        return h.hexdigest()


def sim_results_digest(run: Any) -> str:
    """The same digest computed from a netsim AppRun (parity checks)."""
    h = hashlib.sha256()
    for (task, rank), record in sorted(run.app.records.items()):
        h.update(f"{task}:{rank}:{record.result!r}\n".encode())
    return h.hexdigest()


def sim_done_set(run: Any) -> set[tuple[str, int]]:
    """DONE (task, rank) pairs of a netsim AppRun (parity checks)."""
    from repro.runtime.instance import InstanceState

    return {
        key
        for key, record in run.app.records.items()
        if record.state is InstanceState.DONE
    }


class NetworkVCE:
    """A VCE whose daemons are real processes (see module docstring).

    Args:
        machines: machine descriptions; one daemon subprocess per entry.
        config: must have ``backend="network"``.
        rate: simulated seconds per wall second — compute work, leases
            and chaos times are sim-denominated and divide by this, so
            tests can run an 8-second lease in well under a second.
        port: router port to request (0 = pick a free one, the default).
        failover: lease/detection/attempt knobs (sim seconds).
        eager_detection: strand a daemon's allocations the moment its
            connection drops; False leaves detection to lease expiry
            (the pure "kill -9 → lease-expiry redispatch" path).
    """

    def __init__(
        self,
        machines: list[Machine],
        config: VCEConfig | None = None,
        rate: float = 10.0,
        port: int = 0,
        failover: FailoverConfig | None = None,
        eager_detection: bool = True,
    ) -> None:
        if not machines:
            raise ConfigurationError("a network VCE needs at least one machine")
        self.config = config or VCEConfig(backend="network")
        if self.config.backend != "network":
            raise ConfigurationError(
                f"NetworkVCE requires backend='network', got {self.config.backend!r}"
            )
        self.machines = {m.name: m for m in machines}
        self.sim = create_simulator(self.config.seed, backend="network")
        self.sim.set_rate(rate)
        self.rate = rate
        self.failover = failover or FailoverConfig()
        self.eager_detection = eager_detection
        self.requested_port = port
        self.leader = sorted(self.machines)[0]
        self.router = FrameRouter(
            self._on_local,
            on_hello=self._on_hello,
            on_disconnect=self._on_disconnect,
            on_frame=self._on_frame,
        )
        self.workload_spec: WorkloadSpec | None = None
        self.apps: dict[str, NetworkApp] = {}
        self._procs: dict[str, subprocess.Popen] = {}
        self._spawn_args: dict[str, list[str]] = {}
        self._hellos: dict[str, Hello] = {}
        self._all_registered = asyncio.Event()
        self._alloc_waiters: dict[str, asyncio.Future] = {}
        self._loads: dict[str, float] = {}
        self._booted = False

    # ------------------------------------------------------------------ boot

    async def aboot(self, workload: WorkloadSpec | None = None) -> "NetworkVCE":
        """Bind the router, spawn one daemon per machine, await Hellos."""
        self.workload_spec = workload
        port = await self.router.start("127.0.0.1", self.requested_port)
        self.sim.hold()  # sockets keep the wall-clock loop alive
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        for name, machine in sorted(self.machines.items()):
            argv = [
                sys.executable, "-m", "repro.netexec.daemonhost",
                "--connect", f"127.0.0.1:{port}",
                "--host", name, "--machine", name,
                "--arch-class", machine.arch_class.value,
                "--speed", str(machine.speed),
            ]
            self._spawn_args[name] = argv
            self._procs[name] = subprocess.Popen(
                argv, env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
            )
        try:
            await asyncio.wait_for(self._all_registered.wait(), BOOT_TIMEOUT)
        except asyncio.TimeoutError:
            missing = sorted(set(self.machines) - set(self._hellos))
            await self.ashutdown()
            raise TransportError(
                f"daemons never registered within {BOOT_TIMEOUT}s: {missing}"
            )
        self._booted = True
        return self

    async def _on_hello(self, hello: Hello, peer: Any) -> None:
        self._hellos[hello.host] = hello
        self.sim.emit(
            "net.hello", hello.host,
            machine=hello.machine_name, pid=hello.pid,
            incarnation=hello.incarnation,
        )
        self.router.send(
            hello.host,
            Welcome(
                host=hello.host,
                peers=tuple(sorted(self.machines)),
                leader=self.leader,
                seed=self.config.seed,
                rate=self.rate,
                workload=self.workload_spec,
            ),
        )
        if set(self._hellos) >= set(self.machines):
            self._all_registered.set()

    # -------------------------------------------------------------- inbound

    def _on_local(self, envelope: Envelope) -> None:
        payload = envelope.payload
        if isinstance(payload, EmitRecord):
            self.sim.log.emit(
                self.sim.now, payload.category, payload.source, **dict(payload.data)
            )
        elif isinstance(payload, (AllocationReply, AllocationError_)):
            waiter = self._alloc_waiters.pop(payload.req_id, None)
            if waiter is not None and not waiter.done():
                waiter.set_result(payload)
        elif isinstance(payload, TaskDone):
            self._commit(payload)
        elif isinstance(payload, TaskFailed):
            self._task_failed(payload)

    def _on_frame(self, host: str, message: Any) -> None:
        if isinstance(message, Heartbeat):
            self._loads[host] = message.load

    # --------------------------------------------------------------- submit

    async def asubmit(self, workload: WorkloadSpec) -> NetworkApp:
        """Run the execution-program allocation flow for *workload*."""
        if not self._booted:
            raise ConfigurationError("call aboot() before submitting")
        graph = build_workload(workload)
        ids = self.sim.ids
        app = NetworkApp(
            id=ids.next("app"),
            graph=graph,
            trace=TraceContext(ids.next("trace"), ids.next("span")),
        )
        for node in graph:
            for rank in range(node.instances):
                app.records[(node.name, rank)] = _Record(node.name, rank)
        self.apps[app.id] = app
        req_id = ids.next("req")
        modules = tuple(
            ModuleNeed(task=node.name, min_instances=node.instances,
                       max_instances=node.instances)
            for node in graph
        )
        request = ResourceRequest(
            req_id=req_id,
            app=app.id,
            machine_class=MachineClass.WORKSTATION,
            modules=modules,
            reply_to=EXEC_ADDR,
            trace=app.trace,
        )
        reply = await self._allocate(request)
        placement = self._place(app, reply)
        self._dispatch_ready(app, placement)
        return app

    async def _allocate(self, request: ResourceRequest) -> AllocationReply:
        loop = asyncio.get_running_loop()
        last: AllocationError_ | None = None
        for _attempt in range(3):
            waiter: asyncio.Future = loop.create_future()
            self._alloc_waiters[request.req_id] = waiter
            self.router.route(
                Envelope(EXEC_ADDR, Address(self.leader, "daemon"), request)
            )
            try:
                reply = await asyncio.wait_for(waiter, ALLOC_TIMEOUT)
            except asyncio.TimeoutError:
                self._alloc_waiters.pop(request.req_id, None)
                self.sim.emit("exec.retry_request", request.app, req_id=request.req_id)
                continue
            if isinstance(reply, AllocationReply):
                return reply
            last = reply
            break
        if last is not None:
            raise AllocationError(
                f"{request.app}: {last.requested} instances requested, "
                f"{last.available} available"
            )
        raise AllocationError(f"{request.app}: no allocation reply from leader")

    def _place(self, app: NetworkApp, reply: AllocationReply) -> dict:
        """Same policy as the sim's execution program; leftover instances
        (more ranks than machines) round-robin over the sorted bids."""
        candidates = tuple(b.machine for b in reply.bids)
        needs = [(task, rank, candidates) for (task, rank) in sorted(app.records)]
        placed = load_sorted_assignment(needs, list(reply.bids))
        order = [b.machine for b in reply.bids]
        for i, (task, rank, _c) in enumerate(needs):
            if (task, rank) not in placed:
                placed[(task, rank)] = order[i % len(order)]
        return placed

    # ------------------------------------------------------------- dispatch

    def _dispatch_ready(self, app: NetworkApp, placement: dict | None = None) -> None:
        """Dispatch every not-yet-dispatched record whose precedence
        predecessors (all ranks) are done."""
        if placement is not None:
            for key, host in placement.items():
                app.records[key].host = host
        for (task, rank), record in sorted(app.records.items()):
            if record.dispatched or record.done or record.failed:
                continue
            preds = app.graph.predecessors(task)
            if all(
                r.done
                for k, r in app.records.items()
                if k[0] in preds
            ):
                self._dispatch(app, record)

    def _dispatch(self, app: NetworkApp, record: _Record) -> None:
        host = record.host
        if host is None or host not in self.router.peers:
            host = self._pick_host(record)
            if host is None:
                # nobody alive right now; lease/detection path will retry
                self.sim.schedule(
                    self.failover.detection,
                    lambda: self._dispatch(app, record),
                )
                return
            record.host = host
        node = app.graph.task(record.task)
        record.dispatched = True
        self.sim.emit(
            "runtime.dispatch", app.id,
            task=record.task, rank=record.rank, host=host,
            stage_in=(), binary="", incarnation=record.attempts,
            after=tuple(app.graph.predecessors(record.task)),
            **app.trace.fields(),
        )
        self.router.send(
            host,
            Envelope(
                EXEC_ADDR,
                Address(host, "daemon"),
                TaskAssignment(
                    app=app.id, task=record.task, rank=record.rank,
                    epoch=record.epoch, work=node.work,
                    trace=tuple(app.trace.fields().items()),
                ),
            ),
        )
        self._arm_lease(app, record, record.epoch)

    def _pick_host(self, record: _Record) -> str | None:
        """Least-loaded connected daemon, same machine class when the
        failover config says so (deterministic tie-break by name)."""
        wanted = None
        if self.failover.same_class_only and record.host in self.machines:
            wanted = self.machines[record.host].arch_class
        candidates = []
        for host in self.router.peers:
            machine = self.machines.get(host)
            if machine is None:
                continue
            if wanted is not None and machine.arch_class is not wanted:
                continue
            candidates.append((self._loads.get(host, 0.0), host))
        if not candidates:
            return None
        candidates.sort()
        return candidates[0][1]

    # --------------------------------------------------------------- leases

    def _arm_lease(self, app: NetworkApp, record: _Record, epoch: int) -> None:
        self.sim.schedule(
            self.failover.lease, lambda: self._check_lease(app, record, epoch)
        )

    def _check_lease(self, app: NetworkApp, record: _Record, epoch: int) -> None:
        if record.done or record.failed or record.epoch != epoch:
            return
        host = record.host
        if host in self.router.peers:
            self._arm_lease(app, record, epoch)  # renewed
            return
        self.sim.emit(
            "recovery.lease_expired", app.id,
            task=record.task, rank=record.rank, epoch=epoch, host=host,
        )
        self._strand(app, record, reason="lease-expired", via="timeout")

    def _on_disconnect(self, host: str) -> None:
        self._hellos.pop(host, None)
        self._all_registered.clear()
        self.sim.emit("net.daemon_lost", host)
        if not self.eager_detection:
            return  # leases will notice
        for app in self.apps.values():
            for record in app.records.values():
                if (
                    record.host == host
                    and record.dispatched
                    and not (record.done or record.failed)
                ):
                    self._strand(app, record, reason="connection-lost",
                                 via="daemon-takeover")

    def _strand(self, app: NetworkApp, record: _Record, reason: str, via: str) -> None:
        if record.stranded_at is not None:
            return  # already stranded; one redispatch pending
        record.stranded_at = self.sim.now
        self.sim.emit(
            "recovery.strand", app.id,
            task=record.task, rank=record.rank, epoch=record.epoch,
            host=record.host, reason=reason,
        )
        epoch = record.epoch
        self.sim.schedule(
            self.failover.detection,
            lambda: self._redispatch(app, record, epoch, via),
        )

    def _redispatch(self, app: NetworkApp, record: _Record, epoch: int, via: str) -> None:
        if record.done or record.failed or record.epoch != epoch:
            record.stranded_at = None
            return
        if record.attempts >= self.failover.max_redispatches:
            self.sim.emit(
                "recovery.gave_up", app.id,
                task=record.task, rank=record.rank, attempts=record.attempts,
            )
            record.failed = True
            self._fail_app(app)
            return
        src = record.host
        target = self._pick_host(record)
        if target is None:
            self.sim.schedule(
                self.failover.detection,
                lambda: self._redispatch(app, record, epoch, via),
            )
            return
        latency = self.sim.now - (record.stranded_at or self.sim.now)
        record.stranded_at = None
        record.epoch += 1
        record.attempts += 1
        record.host = target
        record.dispatched = False
        self.sim.emit(
            "recovery.redispatch", app.id,
            task=record.task, rank=record.rank,
            src=src, dst=target, via=via,
            attempt=record.attempts, latency=latency, restored=False,
        )
        self._dispatch(app, record)

    # --------------------------------------------------------------- commit

    def _commit(self, done: TaskDone) -> None:
        app = self.apps.get(done.app)
        if app is None:
            return
        record = app.records.get((done.task, done.rank))
        if record is None:
            return
        if record.done or done.epoch != record.epoch:
            self.sim.emit(
                "runtime.stale_commit", app.id,
                task=done.task, rank=done.rank,
                epoch=done.epoch, current=record.epoch,
            )
            return
        record.done = True
        record.result = done.result
        record.stranded_at = None
        if app.done:
            self._finish_app(app)
        else:
            self._dispatch_ready(app)

    def _task_failed(self, failed: TaskFailed) -> None:
        app = self.apps.get(failed.app)
        if app is None:
            return
        record = app.records.get((failed.task, failed.rank))
        if record is None or record.done or failed.epoch != record.epoch:
            return
        self._strand(app, record, reason="instance-failed", via="timeout")

    def _finish_app(self, app: NetworkApp) -> None:
        self.sim.emit("app.done", app.id, tasks=len(app.records))
        self.router.broadcast(
            Envelope(EXEC_ADDR, Address("*", "daemon"), TerminateNotice(app.id))
        )
        app.finished.set()

    def _fail_app(self, app: NetworkApp) -> None:
        app.failed = True
        self.sim.emit("app.failed", app.id)
        app.finished.set()

    # ---------------------------------------------------------------- chaos

    def schedule_chaos(self, actions: list) -> None:
        """Map a chaos schedule onto real processes: ``crash`` →
        ``SIGKILL`` of the daemon subprocess at the action's (sim) time,
        ``restart`` → respawn.  Other fault kinds are network-shaping
        knobs that have no real-socket implementation yet; they are
        logged and skipped (docs/NETWORK.md)."""
        for action in actions:
            if action.kind == "crash":
                self.sim.schedule_at(
                    max(action.time, self.sim.now),
                    lambda target=action.target: self.kill_daemon(target),
                )
            elif action.kind == "restart":
                self.sim.schedule_at(
                    max(action.time, self.sim.now),
                    lambda target=action.target: self.restart_daemon(target),
                )
            else:
                self.sim.emit(
                    "fault.skipped", action.target or "*", kind=action.kind
                )

    def kill_daemon(self, host: str) -> None:
        """Real SIGKILL — the network backend's chaos ``crash``."""
        proc = self._procs.get(host)
        if proc is None or proc.poll() is not None:
            return
        self.sim.emit("fault.crash", host, pid=proc.pid, signal="SIGKILL")
        proc.send_signal(signal.SIGKILL)

    def restart_daemon(self, host: str) -> None:
        """Respawn a killed daemon (it reconnects and re-registers)."""
        proc = self._procs.get(host)
        if proc is not None and proc.poll() is None:
            return  # still alive
        argv = self._spawn_args.get(host)
        if argv is None:
            return
        self.sim.emit("fault.restart", host)
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self._procs[host] = subprocess.Popen(
            argv, env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
        )

    # -------------------------------------------------------------- running

    async def adrive(self, app: NetworkApp, timeout: float = 60.0) -> NetworkApp:
        """Pump the wall-clock loop until *app* finishes (wall *timeout*)."""
        drive = asyncio.get_running_loop().create_task(
            self.sim.drive(stop_when=lambda: app.finished.is_set())
        )
        try:
            await asyncio.wait_for(app.finished.wait(), timeout)
        finally:
            drive.cancel()
            try:
                await drive
            except (asyncio.CancelledError, Exception):
                pass
        return app

    async def ashutdown(self) -> None:
        """Stop daemons and close sockets; leaves no orphan processes."""
        self.router.broadcast(Shutdown())
        await asyncio.sleep(0.05)
        await self.router.close()
        for proc in self._procs.values():
            if proc.poll() is None:
                proc.terminate()
        for proc in self._procs.values():
            try:
                proc.wait(timeout=3.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=3.0)
        self.sim.release()
        self._booted = False

    def run_workload(
        self,
        workload: WorkloadSpec,
        timeout: float = 60.0,
        chaos: list | None = None,
    ) -> NetworkApp:
        """Boot, submit, drive to completion, shut down (sync wrapper)."""

        async def _run() -> NetworkApp:
            await self.aboot(workload)
            try:
                app = await self.asubmit(workload)
                if chaos:
                    self.schedule_chaos(chaos)
                await self.adrive(app, timeout)
                return app
            finally:
                await self.ashutdown()

        return asyncio.run(_run())

    # -------------------------------------------------------------- queries

    def orphan_pids(self) -> list[int]:
        """PIDs of daemon subprocesses still running (leak check)."""
        return [p.pid for p in self._procs.values() if p.poll() is None]
