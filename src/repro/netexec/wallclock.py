"""The wall-clock event loop behind ``VCEConfig(backend="network")``.

:class:`WallClockSimulator` implements the :class:`~repro.netsim.backend.
SimBackend` contract with real time instead of the tombstone heap's
virtual time: ``now`` is wall-clock seconds since the loop started,
scaled by a *rate* (simulated seconds per wall second, the same knob as
:class:`~repro.netsim.pacing.WallClockPacer`), and timers fire from an
asyncio loop interleaved with real socket traffic.

What survives of the netsim contract, and what deliberately does not:

- **Survives**: the scheduling API (``schedule``/``schedule_at``/
  ``call_soon`` with ``daemon`` and ``host`` tags), lazy idempotent
  ``cancel``, ``pending`` counting live entries, daemon events never
  keeping :meth:`run` alive, and the component-facing surface the rest
  of the tree expects of a simulator (``log``, ``ids``, ``rng``,
  ``telemetry``, ``hb``, ``emit``).
- **Does not**: the exact ``(time, seq)`` total order.  Wall time is not
  virtual time; two timers 1 ms apart may be reordered by OS scheduling.
  Event *interleavings* are therefore not digest-stable on this backend —
  only task outcomes are (see docs/NETWORK.md for the contract).  The
  conformance suite keeps its (time, seq) sections on the sim backends
  (:data:`repro.netsim.backend.SIM_BACKEND_NAMES`) for exactly this
  reason.

Wall-clock reads in this module are the backend's whole point, not a
determinism leak; the module lives outside detlint's scanned scope, the
same carve-out the pacer documents.
"""

from __future__ import annotations

import asyncio
import heapq
import time
from typing import Any, Callable

from repro.netsim.pacing import WallClockPacer
from repro.netsim.backend import SimBackend
from repro.util.errors import SimulationError
from repro.util.eventlog import EventLog
from repro.util.ids import IdGenerator
from repro.util.rng import RngStreams


class _WallTimer:
    """Cancellable timer handle (duck-typed like the kernel's timers)."""

    __slots__ = ("time", "seq", "callback", "daemon", "host", "cancelled", "fired")

    def __init__(
        self,
        when: float,
        seq: int,
        callback: Callable[[], None],
        daemon: bool,
        host: str | None,
    ) -> None:
        self.time = when
        self.seq = seq
        self.callback = callback
        self.daemon = daemon
        self.host = host
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "_WallTimer") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class WallClockSimulator(SimBackend):
    """A :class:`SimBackend` paced by real time (see module docstring).

    Args:
        seed: root seed for the run's rng streams and id generator (task
            outcomes stay seed-deterministic even though interleavings
            are not).
        rate: simulated seconds per wall-clock second.  The network VCE
            runs sim-denominated durations — compute work, failover
            leases, chaos schedules — through this scale so an 8-second
            lease need not cost 8 wall seconds in tests.
    """

    backend_name = "network"
    shard_count = 1

    def __init__(self, seed: int = 0, rate: float = 1.0) -> None:
        if rate <= 0.0:
            raise SimulationError(f"wall-clock rate must be positive, got {rate}")
        self.seed = seed
        self.rate = rate
        self.pacer = WallClockPacer(rate)
        self.log = EventLog()
        self.ids = IdGenerator()
        self.rng = RngStreams(seed)
        self.telemetry: Any = None
        self.hb: Any = None
        self._heap: list[_WallTimer] = []
        self._seq = 0
        self._origin: float | None = None
        self._live_nondaemon = 0
        self._fired = 0
        #: asyncio.Event set whenever a new timer may need an earlier wake
        self._kick: asyncio.Event | None = None
        #: external keep-alive claims (open sockets, live subprocesses);
        #: ``run`` does not exit while any are held even if the heap drains
        self._external_work = 0

    # -- time --------------------------------------------------------------

    @property
    def now(self) -> float:
        """Simulated seconds since :meth:`start` (wall elapsed × rate)."""
        if self._origin is None:
            return 0.0
        # the wall clock IS this backend's clock (module docstring)
        return (time.monotonic() - self._origin) * self.rate  # detlint: ok(D001)

    def start(self) -> None:
        """Anchor sim time 0 at this wall instant (idempotent)."""
        if self._origin is None:
            self._origin = time.monotonic()  # detlint: ok(D001)
            self.pacer.start(0.0)

    def set_rate(self, rate: float) -> None:
        """Change the sim-seconds-per-wall-second scale (before start)."""
        if self._origin is not None:
            raise SimulationError("cannot change the clock rate after start")
        if rate <= 0.0:
            raise SimulationError(f"wall-clock rate must be positive, got {rate}")
        self.rate = rate
        self.pacer.rate = rate

    @property
    def events_processed(self) -> int:
        return self._fired

    # -- component surface -------------------------------------------------

    def emit(self, category: str, source: str, **data: Any) -> None:
        """Append to the run's event log, stamped with the current time."""
        self.log.emit(self.now, category, source, **data)

    # -- external work (sockets, subprocesses) -----------------------------

    def hold(self) -> None:
        """Claim the loop: :meth:`run` keeps going while holds are open."""
        self._external_work += 1

    def release(self) -> None:
        self._external_work = max(0, self._external_work - 1)
        self._wake()

    # -- scheduling --------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        daemon: bool = False,
        host: str | None = None,
    ) -> _WallTimer:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self._push(self.now + delay, callback, daemon, host)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        daemon: bool = False,
        host: str | None = None,
    ) -> _WallTimer:
        if time < self.now:
            raise SimulationError(
                f"cannot schedule in the past (t={time} < now={self.now})"
            )
        return self._push(time, callback, daemon, host)

    def call_soon(
        self,
        callback: Callable[[], None],
        daemon: bool = False,
        host: str | None = None,
    ) -> _WallTimer:
        return self._push(self.now, callback, daemon, host)

    def _push(
        self,
        when: float,
        callback: Callable[[], None],
        daemon: bool,
        host: str | None,
    ) -> _WallTimer:
        timer = _WallTimer(when, self._seq, callback, daemon, host)
        self._seq += 1
        heapq.heappush(self._heap, timer)
        if not daemon:
            self._live_nondaemon += 1
        self._wake()
        return timer

    def _wake(self) -> None:
        if self._kick is not None:
            self._kick.set()

    # -- running -----------------------------------------------------------

    def step(self) -> bool:
        """Fire the next *due* timer, waiting for it if necessary."""
        self.start()
        while self._heap:
            timer = self._heap[0]
            if timer.cancelled:
                heapq.heappop(self._heap)
                continue
            wait = (timer.time - self.now) / self.rate
            if wait > 0:
                time.sleep(wait)
            heapq.heappop(self._heap)
            self._fire(timer)
            return True
        return False

    def _fire(self, timer: _WallTimer) -> None:
        timer.fired = True
        if not timer.daemon:
            self._live_nondaemon -= 1
        self._fired += 1
        timer.callback()

    def _pop_due(self) -> list[_WallTimer]:
        """All timers due at the current instant, (time, seq)-ordered."""
        due: list[_WallTimer] = []
        now = self.now
        while self._heap:
            timer = self._heap[0]
            if timer.cancelled:
                heapq.heappop(self._heap)
                continue
            if timer.time > now:
                break
            due.append(heapq.heappop(self._heap))
        return due

    def _next_wait(self) -> float | None:
        """Wall seconds until the earliest live timer; None for empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return max(0.0, (self._heap[0].time - self.now) / self.rate)

    def _done(self, stop_when: Callable[[], bool] | None) -> bool:
        if stop_when is not None and stop_when():
            return True
        return self._live_nondaemon == 0 and self._external_work == 0

    async def drive(
        self,
        until: float | None = None,
        max_events: int | None = None,
        stop_when: Callable[[], bool] | None = None,
    ) -> float:
        """Async pump: fire due timers, sleep until the next one, yield to
        the socket machinery in between.  The asyncio twin of ``run``."""
        self.start()
        self._kick = asyncio.Event()
        fired = 0
        try:
            while True:
                for timer in self._pop_due():
                    if until is not None and timer.time > until:
                        # past the horizon: put it back un-fired and stop
                        heapq.heappush(self._heap, timer)
                        return self.now
                    self._fire(timer)
                    fired += 1
                    if max_events is not None and fired >= max_events:
                        return self.now
                    await asyncio.sleep(0)  # let socket callbacks interleave
                if self._done(stop_when):
                    return self.now
                wait = self._next_wait()
                if wait is None:
                    if self._external_work == 0 and self._live_nondaemon == 0:
                        return self.now
                    wait = 0.05  # idle poll while sockets are live
                if until is not None:
                    horizon = max(0.0, (until - self.now) / self.rate)
                    if horizon == 0.0:
                        return self.now
                    wait = min(wait, horizon)
                self._kick.clear()
                try:
                    await asyncio.wait_for(self._kick.wait(), timeout=min(wait, 0.25))
                except asyncio.TimeoutError:
                    pass
        finally:
            self._kick = None

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
        stop_when: Callable[[], bool] | None = None,
    ) -> float:
        """Blocking wrapper around :meth:`drive` (no loop already running)."""
        return asyncio.run(self.drive(until, max_events, stop_when))

    # -- observation -------------------------------------------------------

    @property
    def pending(self) -> int:
        return sum(1 for t in self._heap if not t.cancelled)

    # -- sanitizer seams ---------------------------------------------------

    def set_tie_shuffle(self, salt: int) -> None:
        """Tie shuffle is meaningless under wall time: there are no
        deterministic ties to permute.  Accept 0 (the no-op) so generic
        drivers can call this unconditionally; reject real salts."""
        if salt != 0:
            raise SimulationError(
                "tie-shuffle requires a virtual-time backend "
                "(serial or sharded), not the network backend"
            )
