"""The 3-process localhost demo behind ``repro serve --backend network``.

Runs one randomdag workload twice — once inside the serial netsim kernel,
once across N real daemon processes on localhost — and reports the
determinism contract's testable half: **same DONE task set, same
per-task results digest** (event interleavings are allowed to differ;
see docs/NETWORK.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.cluster import workstation_cluster
from repro.core.config import VCEConfig
from repro.netexec.frames import WorkloadSpec
from repro.netexec.supervisor import (
    NetworkVCE,
    sim_done_set,
    sim_results_digest,
)


@dataclass
class QuickstartReport:
    """Outcome of one sim-vs-network parity run."""

    workload: WorkloadSpec
    machines: int
    sim_done: set
    net_done: set
    sim_digest: str
    net_digest: str
    net_events: int
    protocol_errors: int
    orphans: list[int]

    @property
    def outcomes_match(self) -> bool:
        return self.sim_done == self.net_done and self.sim_digest == self.net_digest

    @property
    def ok(self) -> bool:
        return self.outcomes_match and self.protocol_errors == 0 and not self.orphans

    def render(self) -> str:
        lines = [
            f"workload      {self.workload.kind} {dict(self.workload.kwargs)}",
            f"processes     {self.machines} daemons + 1 supervisor",
            f"DONE set      sim={len(self.sim_done)} net={len(self.net_done)} "
            f"{'MATCH' if self.sim_done == self.net_done else 'MISMATCH'}",
            f"results       sim={self.sim_digest[:16]} net={self.net_digest[:16]} "
            f"{'MATCH' if self.sim_digest == self.net_digest else 'MISMATCH'}",
            f"net events    {self.net_events} "
            f"(protocol errors: {self.protocol_errors})",
            f"orphans       {self.orphans or 'none'}",
            f"verdict       {'OK' if self.ok else 'FAIL'}",
        ]
        return "\n".join(lines)


def default_workload(seed: int = 7, machines: int = 3) -> WorkloadSpec:
    """A small randomdag every demo and smoke test shares.

    The allocation model (sim and network alike) places one instance per
    machine, so the graph is sized ``width=1`` — a ``layers``-deep chain,
    one task per daemon — to keep the sim reference allocatable on the
    same 3-machine cluster the network run uses.
    """
    return WorkloadSpec(
        kind="randomdag",
        kwargs=(
            ("layers", machines), ("width", 1), ("seed", seed),
            ("min_work", 1.0), ("max_work", 4.0),
        ),
    )


def run_sim_reference(
    workload: WorkloadSpec, machines: int, seed: int
) -> tuple[set, str]:
    """The serial-backend half of the parity check."""
    from repro.core.environment import VirtualComputingEnvironment
    from repro.netexec.daemonhost import build_workload

    vce = VirtualComputingEnvironment(
        workstation_cluster(machines), VCEConfig(seed=seed)
    )
    vce.boot()
    run = vce.submit(build_workload(workload))
    vce.run_to_completion(run)
    return sim_done_set(run), sim_results_digest(run)


def run_network(
    workload: WorkloadSpec,
    machines: int,
    seed: int,
    rate: float,
    timeout: float,
    chaos: list | None = None,
) -> tuple[Any, NetworkVCE]:
    """The real-process half; returns (app, vce) for inspection."""
    vce = NetworkVCE(
        workstation_cluster(machines),
        VCEConfig(seed=seed, backend="network"),
        rate=rate,
    )
    app = vce.run_workload(workload, timeout=timeout, chaos=chaos)
    return app, vce


def run_quickstart(
    machines: int = 3,
    seed: int = 7,
    rate: float = 10.0,
    timeout: float = 120.0,
    workload: WorkloadSpec | None = None,
) -> QuickstartReport:
    """Run both halves and compare (the acceptance-criteria check)."""
    from repro.analysis.protocol import check_records
    from repro.analysis.report import Severity

    workload = workload or default_workload(seed, machines)
    sim_done, sim_digest = run_sim_reference(workload, machines, seed)
    app, vce = run_network(workload, machines, seed, rate, timeout)
    findings = check_records(vce.sim.log.records())
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    return QuickstartReport(
        workload=workload,
        machines=machines,
        sim_done=sim_done,
        net_done=app.done_set(),
        sim_digest=sim_digest,
        net_digest=app.results_digest(),
        net_events=len(vce.sim.log.records()),
        protocol_errors=errors,
        orphans=vce.orphan_pids(),
    )


def main(machines: int = 3, seed: int = 7, rate: float = 10.0) -> int:
    report = run_quickstart(machines=machines, seed=seed, rate=rate)
    print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
