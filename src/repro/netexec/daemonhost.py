"""The per-machine daemon process of the network backend.

``python -m repro.netexec.daemonhost --connect 127.0.0.1:PORT --host ws0``
is one real OS process playing the role netsim gives a simulated
:class:`~repro.scheduler.daemon.SchedulerDaemon` plus its host's task
executors: it connects to the supervisor's frame router, registers with
:class:`~repro.netexec.frames.Hello`, rebuilds the workload graph from
the :class:`~repro.netexec.frames.WorkloadSpec` in the
:class:`~repro.netexec.frames.Welcome` (task programs are closures and
never travel the wire), and then speaks the ordinary
:mod:`repro.scheduler.messages` protocol over the socket:

- as **leader** it serves :class:`ResourceRequest` by probing every peer
  with :class:`DiscloseProbe`, collecting :class:`ProbeReply` bids
  (bounded by a wall-clock timeout), and answering
  :class:`AllocationReply` sorted by load — emitting the same
  ``sched.request`` / ``sched.alloc`` records the simulated daemon does,
  forwarded to the supervisor's event log as :class:`EmitRecord` frames
  so the bidding FSM checker sees one stream.
- as **member** it answers probes with its own :class:`MachineBid`
  (load = currently-running instances).
- for each :class:`TaskAssignment` it runs the task's actual program
  generator, interpreting :class:`~repro.vmpi.api.Compute` effects as
  scaled wall-clock sleeps, and reports :class:`TaskDone` (carrying the
  generator's return value — the half of the results digest that must
  match the simulator) or :class:`TaskFailed`.

Being killed with ``SIGKILL`` needs no code here: the supervisor's
failure detector sees the connection drop and strands our allocations,
exactly as the sim's chaos ``crash`` does.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
from typing import Any

from repro.machines.archclass import MachineClass
from repro.netexec.frames import (
    EXEC_ADDR,
    LOG_ADDR,
    EmitRecord,
    Envelope,
    Heartbeat,
    Hello,
    Ping,
    Shutdown,
    TaskAssignment,
    TaskDone,
    TaskFailed,
    Welcome,
    WorkloadSpec,
)
from repro.netexec.transport import DaemonConnection
from repro.netsim.host import Address
from repro.scheduler.messages import (
    AllocationError_,
    DiscloseProbe,
    MachineBid,
    ProbeReply,
    AllocationReply,
    ResourceRequest,
    TerminateNotice,
)
from repro.vmpi.api import Checkpoint, Compute

#: wall seconds a leader waits for peer probe replies before resolving
PROBE_TIMEOUT = 2.0
HEARTBEAT_PERIOD = 0.5


def build_workload(spec: WorkloadSpec) -> Any:
    """Rebuild a task graph from its spec (deterministic by seed)."""
    if spec.kind == "randomdag":
        from repro.workloads.randomdag import build_random_dag

        return build_random_dag(**spec.as_kwargs())
    if spec.kind == "pipeline":
        from repro.workloads.pipeline import build_pipeline_graph

        return build_pipeline_graph(**spec.as_kwargs())
    if spec.kind == "diamond":
        from repro.workloads.pipeline import build_diamond_graph

        return build_diamond_graph(**spec.as_kwargs())
    raise ValueError(f"unknown workload kind {spec.kind!r}")


class _NetTaskContext:
    """Minimal ctx handed to task programs (rank/host introspection).

    ``restored_state`` is always None: the network backend re-runs a
    redispatched task from the start (checkpoints are accepted as effects
    but not yet persisted across processes — see docs/NETWORK.md).
    """

    __slots__ = ("task", "rank", "host", "restored_state")

    def __init__(self, task: str, rank: int, host: str) -> None:
        self.task = task
        self.rank = rank
        self.host = host
        self.restored_state = None


class DaemonHost:
    """One machine's daemon + executor, as a real process."""

    def __init__(
        self,
        host: str,
        machine_name: str,
        connect_host: str,
        connect_port: int,
        arch_class: str = "WORKSTATION",
        speed: float = 1.0,
    ) -> None:
        self.host = host
        self.machine_name = machine_name
        self.arch_class = MachineClass(arch_class)
        self.speed = speed
        self.addr = Address(host, "daemon")
        self.conn = DaemonConnection(
            connect_host, connect_port, self._on_message, retries=40
        )
        self.conn.on_connect = self._send_hello
        self.incarnation = -1
        self.rate = 1.0
        self.seed = 0
        self.peers: tuple[str, ...] = ()
        self.leader: str | None = None
        self.graph: Any = None
        self.welcome = asyncio.Event()
        self.stopping = asyncio.Event()
        #: (app, task, rank) -> running asyncio task
        self.running: dict[tuple[str, int | str], asyncio.Task] = {}
        #: leader state: req_id -> {"request", "bids", "waiting", "done"}
        self._rounds: dict[str, dict[str, Any]] = {}

    # -------------------------------------------------------------- wiring

    def _send_hello(self) -> None:
        self.incarnation += 1
        self.conn.send(
            Hello(
                host=self.host,
                machine_name=self.machine_name,
                arch_class=self.arch_class.value,
                speed=self.speed,
                pid=os.getpid(),
                incarnation=self.incarnation,
            )
        )

    def emit(self, category: str, source: str, **data: Any) -> None:
        """Forward one event-log record to the supervisor's log."""
        self.conn.send(
            Envelope(self.addr, LOG_ADDR, EmitRecord(category, source, tuple(data.items())))
        )

    def send_to(self, dst: Address, payload: Any) -> None:
        self.conn.send(Envelope(self.addr, dst, payload))

    # ------------------------------------------------------------ messages

    async def _on_message(self, message: Any) -> None:
        if isinstance(message, Welcome):
            self._on_welcome(message)
            return
        if isinstance(message, Shutdown):
            self.stopping.set()
            return
        if not isinstance(message, Envelope):
            return
        payload = message.payload
        if isinstance(payload, TaskAssignment):
            self._start_task(payload)
        elif isinstance(payload, DiscloseProbe):
            self.send_to(payload.reply_to, ProbeReply(payload.req_id, self._bid()))
        elif isinstance(payload, ProbeReply):
            self._on_probe_reply(payload)
        elif isinstance(payload, ResourceRequest):
            asyncio.get_running_loop().create_task(self._lead_round(payload))
        elif isinstance(payload, TerminateNotice):
            self._cancel_app(payload.app)
        elif isinstance(payload, Ping):
            self.send_to(message.src, Ping(payload.nonce + 1))

    def _on_welcome(self, welcome: Welcome) -> None:
        self.peers = welcome.peers
        self.leader = welcome.leader
        self.rate = welcome.rate
        self.seed = welcome.seed
        if welcome.workload is not None and self.graph is None:
            self.graph = build_workload(welcome.workload)
        self.welcome.set()

    # ------------------------------------------------------------- bidding

    def _bid(self) -> MachineBid:
        return MachineBid(
            machine=self.machine_name,
            daemon=self.addr,
            load=float(len(self.running)),
            speed=self.speed,
            arch_class=self.arch_class,
        )

    def _trace_data(self, request: ResourceRequest) -> dict[str, Any]:
        return request.trace.fields() if request.trace is not None else {}

    async def _lead_round(self, request: ResourceRequest) -> None:
        """Serve one bidding round as group leader."""
        self.emit(
            "sched.request", str(self.addr),
            app=request.app, req_id=request.req_id, needed=request.total_min,
            **self._trace_data(request),
        )
        others = [p for p in self.peers if p != self.host]
        round_ = {"bids": [self._bid()], "pending": len(others),
                  "event": asyncio.Event()}
        self._rounds[request.req_id] = round_
        probe = DiscloseProbe(req_id=request.req_id, reply_to=self.addr)
        for peer in others:
            self.send_to(Address(peer, "daemon"), probe)
        if others:
            try:
                await asyncio.wait_for(round_["event"].wait(), PROBE_TIMEOUT)
            except asyncio.TimeoutError:
                pass  # resolve with whoever answered
        del self._rounds[request.req_id]
        bids = sorted(round_["bids"], key=lambda b: (b.load, -b.speed, b.machine))
        if len(bids) < request.total_min and not request.queue_if_insufficient:
            self.emit(
                "sched.alloc_error", str(self.addr),
                app=request.app, req_id=request.req_id,
                requested=request.total_min, available=len(bids),
                **self._trace_data(request),
            )
            self.send_to(
                request.reply_to,
                AllocationError_(request.req_id, request.total_min, len(bids)),
            )
            return
        self.emit(
            "sched.alloc", str(self.addr),
            app=request.app, req_id=request.req_id, bids=len(bids),
            **self._trace_data(request),
        )
        self.send_to(request.reply_to, AllocationReply(request.req_id, tuple(bids)))

    def _on_probe_reply(self, reply: ProbeReply) -> None:
        round_ = self._rounds.get(reply.req_id)
        if round_ is None:
            return
        if reply.bid is not None:
            round_["bids"].append(reply.bid)
        round_["pending"] -= 1
        if round_["pending"] <= 0:
            round_["event"].set()

    # ----------------------------------------------------------- execution

    def _start_task(self, assignment: TaskAssignment) -> None:
        key = (assignment.app, assignment.task, assignment.rank)
        task = asyncio.get_running_loop().create_task(self._run_task(assignment))
        self.running[key] = task
        task.add_done_callback(lambda _t: self.running.pop(key, None))

    async def _run_task(self, assignment: TaskAssignment) -> None:
        source = f"{assignment.app}/{assignment.task}:{assignment.rank}"
        trace = dict(assignment.trace)
        self.emit(
            "task.start", source,
            app=assignment.app, task=assignment.task, rank=assignment.rank,
            host=self.host, **trace,
        )
        try:
            result = await self._execute(assignment)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self.emit(
                "task.failed", source,
                app=assignment.app, task=assignment.task, rank=assignment.rank,
                host=self.host, error=str(exc), **trace,
            )
            self.send_to(
                EXEC_ADDR,
                TaskFailed(assignment.app, assignment.task, assignment.rank,
                           assignment.epoch, str(exc)),
            )
            return
        self.emit(
            "task.done", source,
            app=assignment.app, task=assignment.task, rank=assignment.rank,
            host=self.host, **trace,
        )
        self.send_to(
            EXEC_ADDR,
            TaskDone(assignment.app, assignment.task, assignment.rank,
                     assignment.epoch, result),
        )

    async def _execute(self, assignment: TaskAssignment) -> Any:
        """Run the task's real program generator; Compute → scaled sleep."""
        node = None
        if self.graph is not None and assignment.task in self.graph:
            node = self.graph.task(assignment.task)
        program = getattr(node, "program", None)
        if program is None:
            await self._compute(assignment.work)
            return assignment.work
        ctx = _NetTaskContext(assignment.task, assignment.rank, self.host)
        gen = program(ctx)
        value: Any = None
        while True:
            try:
                effect = gen.send(value)
            except StopIteration as stop:
                return stop.value
            if isinstance(effect, Compute):
                await self._compute(effect.work)
                value = None
            elif isinstance(effect, Checkpoint):
                value = None  # accepted, not persisted (docs/NETWORK.md)
            else:
                raise RuntimeError(
                    f"effect {type(effect).__name__} is not supported on the "
                    f"network backend (Compute only; see docs/NETWORK.md)"
                )

    async def _compute(self, work: float) -> None:
        """*work* units at our speed, scaled from sim to wall seconds."""
        await asyncio.sleep(work / self.speed / max(self.rate, 1e-9))

    def _cancel_app(self, app: str) -> None:
        for key, task in list(self.running.items()):
            if key[0] == app:
                task.cancel()

    # ------------------------------------------------------------ lifetime

    async def _heartbeat_loop(self) -> None:
        while not self.stopping.is_set():
            self.conn.send(Heartbeat(self.host, float(len(self.running)),
                                     len(self.running)))
            await asyncio.sleep(HEARTBEAT_PERIOD)

    async def run(self) -> None:
        await self.conn.connect()
        hb = asyncio.get_running_loop().create_task(self._heartbeat_loop())
        try:
            await self.stopping.wait()
        finally:
            hb.cancel()
            for task in list(self.running.values()):
                task.cancel()
            await self.conn.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-daemonhost",
        description="netexec daemon process (spawned by the supervisor)",
    )
    parser.add_argument("--connect", required=True, metavar="HOST:PORT")
    parser.add_argument("--host", required=True, help="VCE host name (e.g. ws0)")
    parser.add_argument("--machine", default=None, help="machine name (default: host)")
    parser.add_argument("--arch-class", default="WORKSTATION")
    parser.add_argument("--speed", type=float, default=1.0)
    args = parser.parse_args(argv)
    chost, _, cport = args.connect.rpartition(":")
    daemon = DaemonHost(
        host=args.host,
        machine_name=args.machine or args.host,
        connect_host=chost or "127.0.0.1",
        connect_port=int(cport),
        arch_class=args.arch_class,
        speed=args.speed,
    )
    try:
        asyncio.run(daemon.run())
    except KeyboardInterrupt:
        return 130
    return 0


if __name__ == "__main__":
    sys.exit(main())
