"""Wire format for the network execution backend.

Every frame on a netexec socket is::

    magic (4 bytes, b"VCE\\x01") | length (4 bytes, big-endian) |
    crc32 (4 bytes, of the payload) | payload (length bytes)

The payload is a pickle (protocol 5) restricted on the *read* side by an
allowlisting unpickler: only the scheduler protocol messages, the netexec
control frames, and the handful of value types they carry (``Address``,
``MachineClass``, ``TraceContext``, builtins containers) may appear.  A
frame naming any other global — ``os.system``, say — is rejected with
:class:`CodecError` before instantiation, as is a frame with a bad magic,
a bad CRC, or an oversized length field.

:class:`FrameDecoder` is an incremental feed-style decoder so stream
readers can hand it whatever chunk sizes TCP delivers.
"""

from __future__ import annotations

import io
import pickle
import pickletools
import struct
import zlib
from typing import Any, Iterable

MAGIC = b"VCE\x01"
HEADER = struct.Struct(">4sII")  # magic, payload length, payload crc32
#: refuse frames larger than this (a corrupt length field must not make a
#: reader buffer gigabytes before the CRC check can reject it)
MAX_FRAME = 8 * 1024 * 1024


class CodecError(Exception):
    """A frame failed framing, integrity, or allowlist checks."""


#: modules whose public classes may appear in a payload.  The scheduler
#: message set, the netexec control frames, and the value types those
#: carry — nothing that can execute code on construction.
_ALLOWED_MODULES = frozenset(
    {
        "repro.scheduler.messages",
        "repro.netexec.frames",
        "repro.netsim.host",
        "repro.machines.archclass",
        "repro.trace.context",
    }
)

_ALLOWED_BUILTINS = frozenset(
    {"frozenset", "set", "list", "tuple", "dict", "bytearray", "complex"}
)


class _RestrictedUnpickler(pickle.Unpickler):
    def find_class(self, module: str, name: str) -> Any:
        if module in _ALLOWED_MODULES and not name.startswith("_"):
            return super().find_class(module, name)
        if module == "builtins" and name in _ALLOWED_BUILTINS:
            return super().find_class(module, name)
        raise CodecError(f"disallowed global in frame: {module}.{name}")


def encode(message: Any) -> bytes:
    """Serialize *message* into one framed byte string."""
    payload = pickle.dumps(message, protocol=5)
    if len(payload) > MAX_FRAME:
        raise CodecError(f"frame payload too large: {len(payload)} bytes")
    return HEADER.pack(MAGIC, len(payload), zlib.crc32(payload)) + payload


def decode_payload(payload: bytes) -> Any:
    """Unpickle a payload through the allowlist."""
    try:
        return _RestrictedUnpickler(io.BytesIO(payload)).load()
    except CodecError:
        raise
    except Exception as exc:  # truncated/corrupt pickle stream
        raise CodecError(f"undecodable frame payload: {exc}") from exc


def scan_globals(payload: bytes) -> set[str]:
    """The ``module.name`` globals a payload references (diagnostics).

    Handles both the legacy ``GLOBAL`` opcode (inline ``module name``
    argument) and protocol-2+ ``STACK_GLOBAL``, whose module and name are
    the two most recently pushed strings.
    """
    out: set[str] = set()
    strings: list[str] = []
    try:
        for opcode, arg, _pos in pickletools.genops(payload):
            if opcode.name == "GLOBAL" and arg:
                out.add(str(arg).replace(" ", "."))
            elif opcode.name == "STACK_GLOBAL" and len(strings) >= 2:
                out.add(f"{strings[-2]}.{strings[-1]}")
            elif "UNICODE" in opcode.name or opcode.name == "STRING":
                strings.append(str(arg))
    except Exception:
        pass
    return out


class FrameDecoder:
    """Incremental decoder: feed bytes in, iterate messages out.

    >>> dec = FrameDecoder()
    >>> list(dec.feed(encode({"x": 1})))
    [{'x': 1}]
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    @property
    def buffered(self) -> int:
        """Bytes waiting for a complete frame."""
        return len(self._buf)

    def feed(self, data: bytes) -> Iterable[Any]:
        """Consume *data*; yield every complete message it finishes."""
        self._buf.extend(data)
        out: list[Any] = []
        while len(self._buf) >= HEADER.size:
            magic, length, crc = HEADER.unpack_from(self._buf)
            if magic != MAGIC:
                raise CodecError(f"bad frame magic: {magic!r}")
            if length > MAX_FRAME:
                raise CodecError(f"frame length {length} exceeds {MAX_FRAME}")
            end = HEADER.size + length
            if len(self._buf) < end:
                break
            payload = bytes(self._buf[HEADER.size:end])
            del self._buf[:end]
            if zlib.crc32(payload) != crc:
                raise CodecError("frame CRC mismatch")
            out.append(decode_payload(payload))
        return out
