"""Control frames for the network execution backend.

The scheduler protocol itself travels as the existing
:mod:`repro.scheduler.messages` dataclasses — daemons on real sockets
speak the same ``ResourceRequest``/``MachineBid``/``AllocationReply``
vocabulary the simulated daemons do.  The frames here are the transport
envelope and the small process-lifecycle vocabulary around that protocol:
join the mesh, learn the topology, receive a task, report its outcome.

Everything is a frozen slots dataclass (like the scheduler messages) so
payloads stay inert values on the wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.netsim.host import Address

#: reserved router host for supervisor-local addresses: frames sent to
#: ``_supervisor/...`` never leave the supervisor process
SUPERVISOR = "_supervisor"
#: the supervisor's event-log sink (daemon EmitRecord forwarding)
LOG_ADDR = Address(SUPERVISOR, "log")
#: the supervisor's execution-program mailbox (allocation replies,
#: task completions)
EXEC_ADDR = Address(SUPERVISOR, "exec")


@dataclass(frozen=True, slots=True)
class Envelope:
    """One addressed message: the router forwards by ``dst.host``."""

    src: Address
    dst: Address
    payload: Any


@dataclass(frozen=True, slots=True)
class Hello:
    """Daemon → supervisor, first frame on a connection."""

    host: str
    machine_name: str
    arch_class: str
    speed: float
    pid: int
    #: 0 on first connect; bumped on each reconnect of the same daemon
    incarnation: int = 0


@dataclass(frozen=True, slots=True)
class Welcome:
    """Supervisor → daemon, reply to :class:`Hello`.

    Carries everything a daemon needs to participate: who its peers are,
    which peer leads bidding, the workload *spec* (kind + kwargs — the
    daemon rebuilds the graph locally; task programs are closures and do
    not travel), and the wall-clock rate so sim-denominated durations
    (compute work, lease periods) convert consistently everywhere.
    """

    host: str
    peers: tuple[str, ...]
    leader: str
    seed: int
    rate: float
    workload: "WorkloadSpec | None" = None


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """A graph the daemon can rebuild deterministically by name."""

    kind: str
    kwargs: tuple[tuple[str, Any], ...] = ()

    def as_kwargs(self) -> dict[str, Any]:
        return dict(self.kwargs)


@dataclass(frozen=True, slots=True)
class TaskAssignment:
    """Supervisor → daemon: run one (task, rank) at an allocation epoch."""

    app: str
    task: str
    rank: int
    epoch: int
    work: float
    trace: tuple[tuple[str, Any], ...] = ()


@dataclass(frozen=True, slots=True)
class TaskDone:
    """Daemon → supervisor: a task instance finished."""

    app: str
    task: str
    rank: int
    epoch: int
    result: Any = None


@dataclass(frozen=True, slots=True)
class TaskFailed:
    """Daemon → supervisor: a task instance raised."""

    app: str
    task: str
    rank: int
    epoch: int
    error: str = ""


@dataclass(frozen=True, slots=True)
class EmitRecord:
    """Daemon → supervisor: forward one event-log record.

    Daemons emit protocol events (``sched.*``, ``task.*``) locally; the
    supervisor folds them into the run's single :class:`EventLog` so the
    conformance checker sees one record stream, as it does under netsim.
    """

    category: str
    source: str
    data: tuple[tuple[str, Any], ...] = ()


@dataclass(frozen=True, slots=True)
class Heartbeat:
    """Daemon → supervisor liveness + load report (feeds bids)."""

    host: str
    load: float = 0.0
    running: int = 0


@dataclass(frozen=True, slots=True)
class Shutdown:
    """Supervisor → daemon: drain and exit."""

    reason: str = "done"


@dataclass(frozen=True, slots=True)
class Ping:
    """Either direction: round-trip probe (tests, reconnect checks)."""

    nonce: int = 0
    body: tuple[tuple[str, Any], ...] = field(default=())
