"""Socket plumbing for the network backend.

Two halves, both asyncio (the same idioms as the controlplane server:
``asyncio.start_server`` on a requested port, ``port = server.sockets[0].
getsockname()[1]`` so port 0 picks a free one):

- :class:`FrameRouter` — the supervisor-side hub.  Every daemon holds
  one TCP connection to it; frames are :class:`~repro.netexec.frames.
  Envelope`\\ s addressed by :class:`~repro.netsim.host.Address`, and the
  router forwards by destination host — the same switch role netsim's
  ``Network`` plays, except the links are real sockets.  Addresses whose
  host is not a connected daemon are delivered to the supervisor's local
  handler (the execution program and log sink live in-process with the
  router).
- :class:`DaemonConnection` — the daemon-side client: connect with
  bounded retry (the supervisor may still be binding when a daemon
  starts), a reader task feeding a :class:`~repro.netexec.codec.
  FrameDecoder`, and reconnect-with-backoff when the connection drops
  mid-run.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable

from repro.netexec import codec
from repro.netexec.frames import Envelope, Hello
from repro.util.errors import SimulationError


class TransportError(SimulationError):
    """Socket-level failure surfaced to the backend's callers."""


class _Peer:
    """One connected daemon as the router sees it."""

    __slots__ = ("host", "writer", "hello", "alive")

    def __init__(self, host: str, writer: asyncio.StreamWriter, hello: Hello) -> None:
        self.host = host
        self.writer = writer
        self.hello = hello
        self.alive = True


class FrameRouter:
    """Supervisor-side frame switch (see module docstring).

    Args:
        local_handler: called with (envelope) for frames addressed to a
            host with no daemon connection — the supervisor's own
            addresses (execution program, log sink).
        on_hello: called with (hello, peer) when a daemon registers.
        on_disconnect: called with (host) when a daemon's connection
            drops (EOF or reset) — the supervisor's failure detector.
        on_frame: called with (host, message) for bare (non-Envelope)
            frames after the Hello — heartbeats and the like.
    """

    def __init__(
        self,
        local_handler: Callable[[Envelope], None],
        on_hello: Callable[[Hello, "_Peer"], Awaitable[None]] | None = None,
        on_disconnect: Callable[[str], None] | None = None,
        on_frame: Callable[[str, Any], None] | None = None,
    ) -> None:
        self.local_handler = local_handler
        self.on_hello = on_hello
        self.on_disconnect = on_disconnect
        self.on_frame = on_frame
        self.peers: dict[str, _Peer] = {}
        self.port: int | None = None
        self._server: asyncio.Server | None = None

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind and listen; returns the actual port.  A busy requested
        port raises :class:`TransportError` naming it (the caller can
        retry with port 0)."""
        try:
            self._server = await asyncio.start_server(self._serve, host, port)
        except OSError as exc:
            raise TransportError(
                f"cannot bind netexec router to {host}:{port}: {exc}"
            ) from exc
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def close(self) -> None:
        for peer in list(self.peers.values()):
            peer.alive = False
            peer.writer.close()
        self.peers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------- serving

    async def _serve(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        decoder = codec.FrameDecoder()
        peer: _Peer | None = None
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                for message in decoder.feed(data):
                    if peer is None:
                        if not isinstance(message, Hello):
                            raise codec.CodecError(
                                f"expected Hello, got {type(message).__name__}"
                            )
                        peer = _Peer(message.host, writer, message)
                        self.peers[message.host] = peer
                        if self.on_hello is not None:
                            await self.on_hello(message, peer)
                    elif isinstance(message, Envelope):
                        self.route(message)
                    elif self.on_frame is not None:
                        self.on_frame(peer.host, message)
        except (codec.CodecError, ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if peer is not None and self.peers.get(peer.host) is peer:
                peer.alive = False
                del self.peers[peer.host]
                if self.on_disconnect is not None:
                    self.on_disconnect(peer.host)
            writer.close()

    # ------------------------------------------------------------- routing

    def route(self, envelope: Envelope) -> None:
        """Forward by destination host; local addresses stay in-process."""
        peer = self.peers.get(envelope.dst.host)
        if peer is not None and peer.alive:
            try:
                peer.writer.write(codec.encode(envelope))
            except (ConnectionError, RuntimeError):
                peer.alive = False
        else:
            self.local_handler(envelope)

    def send(self, host: str, message: Any) -> bool:
        """Write one raw frame to a daemon; False if it is not connected."""
        peer = self.peers.get(host)
        if peer is None or not peer.alive:
            return False
        try:
            peer.writer.write(codec.encode(message))
            return True
        except (ConnectionError, RuntimeError):
            peer.alive = False
            return False

    def broadcast(self, message: Any) -> int:
        """Send to every connected daemon; returns how many got it."""
        return sum(1 for host in list(self.peers) if self.send(host, message))


class DaemonConnection:
    """Daemon-side client connection (see module docstring).

    Args:
        handler: called with each inbound message.
        retries: connection attempts before giving up (each waits
            ``backoff`` seconds longer than the last).
    """

    def __init__(
        self,
        host: str,
        port: int,
        handler: Callable[[Any], Awaitable[None]],
        retries: int = 20,
        backoff: float = 0.05,
    ) -> None:
        self.host = host
        self.port = port
        self.handler = handler
        self.retries = retries
        self.backoff = backoff
        self.writer: asyncio.StreamWriter | None = None
        self.connected = asyncio.Event()
        self.closed = False
        #: called (synchronously) after every successful connect, including
        #: reconnects — the daemon re-sends its Hello here
        self.on_connect: Callable[[], None] | None = None

    async def connect(self) -> None:
        """Dial with bounded linear-backoff retry."""
        last: Exception | None = None
        for attempt in range(self.retries):
            try:
                reader, writer = await asyncio.open_connection(self.host, self.port)
                self.writer = writer
                self.connected.set()
                asyncio.get_running_loop().create_task(self._read(reader))
                if self.on_connect is not None:
                    self.on_connect()
                return
            except OSError as exc:
                last = exc
                await asyncio.sleep(self.backoff * (attempt + 1))
        raise TransportError(
            f"cannot reach supervisor at {self.host}:{self.port} "
            f"after {self.retries} attempts: {last}"
        )

    async def _read(self, reader: asyncio.StreamReader) -> None:
        decoder = codec.FrameDecoder()
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                for message in decoder.feed(data):
                    await self.handler(message)
        except (codec.CodecError, ConnectionError):
            pass
        finally:
            self.connected.clear()
            if not self.closed:
                await self._reconnect()

    async def _reconnect(self) -> None:
        try:
            await self.connect()
        except TransportError:
            self.closed = True

    def send(self, message: Any) -> bool:
        if self.writer is None or not self.connected.is_set():
            return False
        try:
            self.writer.write(codec.encode(message))
            return True
        except (ConnectionError, RuntimeError):
            self.connected.clear()
            return False

    async def close(self) -> None:
        self.closed = True
        if self.writer is not None:
            self.writer.close()
            self.writer = None
        self.connected.clear()
