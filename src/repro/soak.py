"""The multi-tenant soak generator (``repro soak``).

A soak run stands up one VCE and replays thousands of applications drawn
from simulated user populations (:mod:`repro.workloads.tenants`): each
tenant has a seeded Poisson or bursty arrival process, a hard
concurrent-instance quota, and a base priority.  The
:class:`SoakDriver` — an ordinary netsim process on the user's
workstation, so the whole run stays inside the deterministic event
order — submits each arrival if its tenant has quota headroom and
otherwise parks it in an admission :class:`~repro.scheduler.queue.
AgingQueue`: held applications gain priority as they wait (§4.3), so a
low-priority tenant's backlog drains late but never starves, while the
quota invariant (never more than ``quota`` admitted instances per
tenant) is enforced by the :class:`~repro.core.tenancy.TenantRegistry`
on every admission.

At the scales this targets (100k+ live instances) the flat
one-leader-per-class bidding protocol is the bottleneck, which is why
:class:`SoakConfig.fanout` defaults to hierarchical sub-leader cells
(see :mod:`repro.scheduler.hierarchy` and docs/SCALE.md).  The run is
digest-deterministic: same config, same seed → byte-identical event log
on the serial and sharded backends.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.cluster import workstation_cluster
from repro.core.config import VCEConfig
from repro.core.environment import VirtualComputingEnvironment
from repro.core.tenancy import TenantSpec
from repro.machines.archclass import MachineClass
from repro.migration.failover import FailoverConfig
from repro.netsim.process import SimProcess
from repro.scheduler.daemon import DaemonConfig
from repro.scheduler.execution_program import RunState
from repro.scheduler.queue import AgingQueue
from repro.trace.replay import event_log_digest
from repro.workloads.tenants import arrival_times, build_population, tenant_app

if TYPE_CHECKING:  # pragma: no cover
    from repro.scheduler.execution_program import AppRun
    from repro.taskgraph import TaskGraph


@dataclass
class SoakConfig:
    """One soak run, fully described (with the seed) for replay.

    Attributes:
        tenants: number of simulated user populations.
        apps: total applications across all tenants.
        machines: workstation count (one scheduler daemon each).
        fanout: sub-leader cells (``1`` = the paper's flat leader).
        seed: root seed for population, arrivals, and the simulation.
        backend/shards: simulation backend selection.
        instances: per-application instance range handed to the
            population builder (per-app placement is capped by distinct
            bidding machines, so keep the high end at or below
            *machines*).
        work: per-instance compute seconds range.
        mean_quota: mean per-tenant concurrent-instance quota; ``None``
            sizes it from apps/tenants so ~20% of arrivals must wait.
        arrival_span: compress arrivals so the last lands at this
            simulated second (None keeps the raw process timescale).
        per_instance_load / busy_threshold: daemon load model — the
            defaults let a host carry ~1100 instances before it stops
            bidding, which is what permits six-figure concurrency on a
            modest cluster.
        chaos: optional fault recipe name (see ``repro.faults``); arms
            the chaos controller and enables reliable transport plus
            lease-based failover so the soak rides through the faults.
        queue_if_insufficient: let leaders age-queue unsatisfiable
            requests instead of failing the run.
        telemetry: keep the live metrics registry + sampler on.
        pulse: driver sampling period for live-instance peaks.
        settle: boot settle time (large groups need more than the
            default 15s).
        max_sim_time: hard stop for the run loop.
    """

    tenants: int = 50
    apps: int = 2000
    machines: int = 256
    fanout: int = 8
    seed: int = 0
    backend: str = "serial"
    shards: int = 4
    instances: tuple[int, int] = (96, 192)
    work: tuple[float, float] = (8.0, 16.0)
    mean_quota: int | None = None
    arrival_span: float | None = 200.0
    per_instance_load: float = 0.0008
    busy_threshold: float = 0.9
    bid_timeout: float = 1.0
    retry_interval: float = 2.0
    aging_rate: float = 0.05
    chaos: str | None = None
    queue_if_insufficient: bool = True
    telemetry: bool = True
    telemetry_interval: float = 600.0
    pulse: float = 5.0
    settle: float = 40.0
    max_sim_time: float = 100_000.0


@dataclass
class SoakReport:
    """End-state of one soak run (deterministic for a given config)."""

    config_tenants: int
    config_apps: int
    machines: int
    fanout: int
    seed: int
    backend: str
    submitted: int = 0
    admitted: int = 0
    held: int = 0  # admissions that had to wait at the quota
    completed: int = 0
    failed: int = 0
    peak_admitted_instances: int = 0
    peak_live_instances: int = 0
    max_admission_wait: float = 0.0
    makespan: float = 0.0
    events: int = 0
    net_messages: int = 0
    requests_led: int = 0
    delegations: int = 0
    escalations: int = 0
    members_polled: int = 0
    bid_fanout_per_round: float = 0.0
    sched_event_share: float = 0.0
    digest: str = ""
    tenants: dict[str, dict[str, int | float]] = field(default_factory=dict)

    def to_dict(self) -> dict:
        out = dict(self.__dict__)
        out["tenants"] = dict(self.tenants)
        return out


@dataclass
class _Ticket:
    """An arrival held at the quota; duck-types the AgingQueue's request
    protocol (``req_id``/``priority``).  The application is drawn once,
    at arrival, so admission timing cannot perturb the random draws."""

    req_id: str
    priority: float
    tenant: str
    graph: "TaskGraph"
    ranges: dict[str, tuple[int, int]]
    charge: int
    first_enqueued: float


class SoakDriver(SimProcess):
    """Submits tenant arrivals into a VCE; see module docstring."""

    def __init__(
        self,
        vce: VirtualComputingEnvironment,
        config: SoakConfig,
        population: tuple[TenantSpec, ...],
    ) -> None:
        super().__init__("soak")
        self.vce = vce
        self.cfg = config
        self.population = population
        self.pending = AgingQueue(config.aging_rate)
        self.arrivals: list[tuple[float, str, int]] = []
        self.submitted = 0
        self.admitted = 0
        self.held = 0
        self.completed = 0
        self.failed = 0
        self.peak_live = 0
        self.max_admission_wait = 0.0
        self._arrivals_done = False
        self._done_app_ids: set[str] = set()
        self._duplicate_finishes = 0

    # ------------------------------------------------------------- lifecycle

    def on_start(self) -> None:
        cfg = self.cfg
        per_tenant = int(math.ceil(cfg.apps / max(1, len(self.population))))
        merged: list[tuple[float, str, int]] = []
        for tenant in self.population:
            rng = self.sim.rng.stream(f"soak.arrivals.{tenant.name}")
            for i, t in enumerate(arrival_times(tenant, per_tenant, rng)):
                merged.append((t, tenant.name, i))
        merged.sort()
        merged = merged[: cfg.apps]
        if cfg.arrival_span is not None and merged:
            last = merged[-1][0] or 1.0
            scale = cfg.arrival_span / last
            merged = [(t * scale, name, i) for (t, name, i) in merged]
        self.arrivals = merged
        for n, (t, _name, _i) in enumerate(merged):
            self.set_timer(t, f"arr:{n}")
        self.set_timer(cfg.pulse, "pulse", daemon=True)
        self.emit("soak.start", tenants=len(self.population), apps=len(merged))

    def on_timer(self, key: str) -> None:
        if key == "pulse":
            self._sample_live()
            self.set_timer(self.cfg.pulse, "pulse", daemon=True)
            return
        if key == "drain":
            self._drain()
            return
        if key.startswith("arr:"):
            n = int(key[4:])
            _, tenant_name, index = self.arrivals[n]
            self._arrive(tenant_name, index)
            if n == len(self.arrivals) - 1:
                self._arrivals_done = True
            return

    # ------------------------------------------------------------- admission

    def _spec(self, name: str) -> TenantSpec:
        return self.vce.tenants.spec(name)

    def _arrive(self, tenant_name: str, index: int) -> None:
        self.submitted += 1
        tenant = self._spec(tenant_name)
        # one stateful stream per tenant for app shapes: arrivals happen in
        # timer order, which is deterministic, so the draws replay exactly
        rng = self.sim.rng.stream(f"soak.apps.{tenant_name}")
        graph, ranges = tenant_app(tenant, index, rng)
        charge = ranges["work"][1]  # planned max == what submit() charges
        ticket = _Ticket(
            req_id=f"{tenant_name}/{index}",
            priority=tenant.priority,
            tenant=tenant_name,
            graph=graph,
            ranges=ranges,
            charge=charge,
            first_enqueued=self.now,
        )
        if self.vce.tenants.can_admit(tenant_name, charge):
            self._submit(ticket)
            return
        # over quota: park in the aged admission queue; it will be
        # reconsidered every time this (or any) tenant frees capacity
        self.held += 1
        self.vce.tenants.state(tenant_name).denials += 1
        self.pending.push(ticket, self.now)
        self.emit(
            "soak.held", tenant=tenant_name, index=index, backlog=len(self.pending)
        )

    def _submit(self, ticket: _Ticket) -> None:
        self.admitted += 1
        self.vce.submit(
            ticket.graph,
            class_map={"work": MachineClass.WORKSTATION},
            ranges=ticket.ranges,
            priority=ticket.priority,
            queue_if_insufficient=self.cfg.queue_if_insufficient,
            on_finished=self._app_done,
            tenant=ticket.tenant,
        )

    def _app_done(self, run: "AppRun") -> None:
        app_id = run.app.id if run.app is not None else f"run-{id(run)}"
        if app_id in self._done_app_ids:
            self._duplicate_finishes += 1
            return
        self._done_app_ids.add(app_id)
        if run.state is RunState.DONE:
            self.completed += 1
        else:
            self.failed += 1
        self._drain()

    def _drain(self) -> None:
        """Admit held arrivals in aged-priority order.  A head whose own
        tenant is still at quota steps aside (it keeps its age) so it
        cannot head-of-line-block other tenants."""
        deferred: list[_Ticket] = []
        while True:
            item = self.pending.pop(self.now)
            if item is None:
                break
            ticket: _Ticket = item.request  # duck-typed (see _Ticket)
            if self.vce.tenants.can_admit(ticket.tenant, ticket.charge):
                wait = self.now - ticket.first_enqueued
                if wait > self.max_admission_wait:
                    self.max_admission_wait = wait
                self.emit(
                    "soak.admit_held",
                    tenant=ticket.tenant,
                    req=ticket.req_id,
                    waited=round(wait, 6),
                )
                self._submit(ticket)
            else:
                deferred.append(ticket)
        for ticket in deferred:
            # re-queue at the original arrival time: age is preserved
            self.pending.push(ticket, ticket.first_enqueued)
        if self.pending and not self.has_timer("drain"):
            self.set_timer(self.cfg.retry_interval * 2, "drain", daemon=True)

    # ------------------------------------------------------------- sampling

    def _sample_live(self) -> None:
        live = 0
        for app in self.vce.runtime.apps.values():
            if not app.status.terminal:
                live += len(app.inflight)
        if live > self.peak_live:
            self.peak_live = live

    # ------------------------------------------------------------- progress

    @property
    def finished(self) -> bool:
        return (
            self._arrivals_done
            and not self.pending
            and (self.completed + self.failed) >= self.admitted
        )


def run_soak(
    config: SoakConfig | None = None,
) -> tuple[VirtualComputingEnvironment, SoakDriver, SoakReport]:
    """Stand up a VCE, drive one soak run to completion, and report."""
    cfg = config or SoakConfig()
    lo, hi = cfg.instances
    mean_quota = cfg.mean_quota
    if mean_quota is None:
        # size quotas at a typical tenant's full concurrent demand: heavy
        # tenants get headroom, batch tenants (x0.4-0.8 archetype
        # multiplier) must wait at the quota — which is what exercises
        # aged admission without strangling peak concurrency
        per_tenant = cfg.apps / max(1, cfg.tenants)
        mean_quota = max(hi, int(per_tenant * (lo + hi) / 2))
    population = build_population(
        cfg.tenants,
        seed=cfg.seed,
        mean_quota=mean_quota,
        instances=cfg.instances,
        work=cfg.work,
    )
    daemon = DaemonConfig(
        busy_threshold=cfg.busy_threshold,
        per_instance_load=cfg.per_instance_load,
        bid_timeout=cfg.bid_timeout,
        retry_interval=cfg.retry_interval,
        aging_rate=cfg.aging_rate,
        leader_fanout=cfg.fanout,
    )
    vce_config = VCEConfig(
        seed=cfg.seed,
        backend=cfg.backend,
        shards=cfg.shards,
        daemon=daemon,
        tenants=population,
        settle_time=cfg.settle,
        telemetry=cfg.telemetry,
        telemetry_interval=cfg.telemetry_interval,
        reliable_transport=cfg.chaos is not None,
        failover=FailoverConfig() if cfg.chaos is not None else None,
    )
    vce = VirtualComputingEnvironment(
        workstation_cluster(cfg.machines), vce_config
    ).boot()
    driver = SoakDriver(vce, cfg, population)
    vce.user_host.spawn(driver)
    if cfg.chaos is not None:
        vce.chaos(cfg.chaos, seed=cfg.seed)
    # run in bounded slices so a wedged run terminates with a clear state
    # instead of spinning forever
    slice_len = 500.0
    while not driver.finished and vce.sim.now < cfg.max_sim_time:
        before = vce.sim.now
        vce.run(until=vce.sim.now + slice_len)
        if vce.sim.now == before:  # no events left at all
            break
    return vce, driver, build_report(vce, driver)


def build_report(
    vce: VirtualComputingEnvironment, driver: SoakDriver
) -> SoakReport:
    cfg = driver.cfg
    counts = vce.sim.log.category_counts()
    total_records = sum(counts.values()) or 1
    sched_records = sum(
        v
        for k, v in counts.items()
        if k.startswith("sched.") or k.startswith("isis.")
    )
    requests_led = sum(d.requests_led for d in vce.daemons.values())
    members_polled = sum(d.members_polled for d in vce.daemons.values())
    escalations = 0
    if vce.sim.telemetry is not None:
        family = vce.sim.telemetry.get("sched_escalations_total")
        if family is not None:
            escalations = int(family.value)
    report = SoakReport(
        config_tenants=cfg.tenants,
        config_apps=cfg.apps,
        machines=cfg.machines,
        fanout=cfg.fanout,
        seed=cfg.seed,
        backend=cfg.backend,
        submitted=driver.submitted,
        admitted=driver.admitted,
        held=driver.held,
        completed=driver.completed,
        failed=driver.failed,
        peak_admitted_instances=vce.tenants.peak_admitted_total,
        peak_live_instances=driver.peak_live,
        max_admission_wait=round(driver.max_admission_wait, 6),
        makespan=round(vce.sim.now, 6),
        events=total_records,
        net_messages=vce.network.messages_sent,
        requests_led=requests_led,
        delegations=sum(d.delegations_sent for d in vce.daemons.values()),
        escalations=escalations,
        members_polled=members_polled,
        bid_fanout_per_round=round(members_polled / max(1, requests_led), 3),
        sched_event_share=round(sched_records / total_records, 6),
        digest=event_log_digest(vce.sim.log),
        tenants=vce.tenants.snapshot(),
    )
    return report
