"""The leader's pending-request queue with priority aging.

"An additional prioritization scheme will also be needed to prevent
starvation of tasks. That is, as a task waits to be dispatched its priority
will be increased to insure it will eventually be dispatched even if that
results in a globally suboptimal schedule. Authorized users will be able to
modify the priorities of particular applications." (§4.3)

Effective priority = base priority + aging_rate × wait time. The queue pops
in descending effective priority; with ``aging_rate = 0`` this degrades to
strict base-priority order, which is what benchmark E4 contrasts against.

Implementation note: aging raises every queued item's effective priority at
the *same* rate, so the difference between any two items is constant over
time — the serving order is time-invariant.  Each item therefore gets a
static sort key at push time (its effective priority extrapolated back to
t=0, ``priority − aging_rate × enqueued_at``) and the queue is an ordinary
heap over those keys with a dict index: ``push`` / ``__contains__`` /
``remove`` are O(1) dict operations (plus one O(log n) heap push), and
``peek`` / ``pop`` are amortised O(log n) with lazy tombstones.
``reprioritize`` re-keys by pushing a fresh heap entry and letting the stale
one tombstone out.  Tombstones are compacted once they dominate the heap,
so cancel-heavy churn cannot grow it without bound.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.scheduler.messages import ResourceRequest

#: Compact the heap when stale entries outnumber live ones, but never below
#: this floor (tiny heaps are cheaper to pop through than to rebuild).
_COMPACT_MIN = 16


@dataclass
class QueuedRequest:
    request: "ResourceRequest"
    enqueued_at: float
    attempts: int = 0
    #: static heap key (set by AgingQueue; changes only on reprioritize)
    sort_key: float = 0.0

    def effective_priority(self, now: float, aging_rate: float) -> float:
        return self.request.priority + aging_rate * (now - self.enqueued_at)


class AgingQueue:
    """Pending requests, served in aged-priority order (see module note)."""

    def __init__(self, aging_rate: float = 0.1) -> None:
        self._aging_rate = aging_rate
        self._by_id: dict[str, QueuedRequest] = {}  # arrival order preserved
        # heap entries: (-sort_key, enqueued_at, seq, item); an entry is
        # stale when its item was removed or re-keyed since it was pushed
        self._heap: list[tuple[float, float, int, QueuedRequest]] = []
        self._seq = 0
        self._stale = 0
        #: instrumentation for the perf-contract tests: item_visits counts
        #: elements touched by genuinely linear passes (wait_times/items);
        #: index operations (push/contains/remove/peek) must not add to it
        self.stats = {"item_visits": 0, "stale_popped": 0, "compactions": 0}

    # -- configuration -----------------------------------------------------

    @property
    def aging_rate(self) -> float:
        return self._aging_rate

    @aging_rate.setter
    def aging_rate(self, rate: float) -> None:
        if rate == self._aging_rate:
            return
        self._aging_rate = rate
        self._rebuild()

    # -- writing -----------------------------------------------------------

    def _key(self, priority: float, enqueued_at: float) -> float:
        return priority - self._aging_rate * enqueued_at

    def _push_entry(self, item: QueuedRequest) -> None:
        heapq.heappush(
            self._heap, (-item.sort_key, item.enqueued_at, self._seq, item)
        )
        self._seq += 1

    def push(self, request: "ResourceRequest", now: float) -> QueuedRequest:
        """Enqueue (idempotent: re-pushing a queued req_id returns the
        existing item, preserving its age — replication may deliver
        duplicates)."""
        existing = self._by_id.get(request.req_id)
        if existing is not None:
            return existing
        item = QueuedRequest(request, now)
        item.sort_key = self._key(request.priority, now)
        self._by_id[request.req_id] = item
        self._push_entry(item)
        return item

    def remove(self, req_id: str) -> bool:
        if self._by_id.pop(req_id, None) is None:
            return False
        self._note_stale()
        return True

    def reprioritize(self, req_id: str, priority: float) -> bool:
        """Apply a runtime priority change (§4.3) to a queued request.
        Returns False when *req_id* is not queued."""
        item = self._by_id.get(req_id)
        if item is None:
            return False
        item.request = replace(item.request, priority=priority)
        item.sort_key = self._key(priority, item.enqueued_at)
        self._push_entry(item)  # old entry is now stale
        self._note_stale()
        return True

    def _note_stale(self) -> None:
        self._stale += 1
        if self._stale > _COMPACT_MIN and self._stale * 2 > len(self._heap):
            self._rebuild()

    def _rebuild(self) -> None:
        self._heap = []
        self._seq = 0
        self._stale = 0
        self.stats["compactions"] += 1
        for item in self._by_id.values():
            item.sort_key = self._key(item.request.priority, item.enqueued_at)
            self._push_entry(item)

    # -- reading -----------------------------------------------------------

    def __contains__(self, req_id: str) -> bool:
        return req_id in self._by_id

    def __len__(self) -> int:
        return len(self._by_id)

    def __bool__(self) -> bool:
        return bool(self._by_id)

    def peek(self, now: float) -> QueuedRequest | None:
        """Highest effective priority first; FIFO among equals."""
        heap = self._heap
        by_id = self._by_id
        while heap:
            negkey, _enq, _seq, item = heap[0]
            if by_id.get(item.request.req_id) is item and item.sort_key == -negkey:
                return item
            heapq.heappop(heap)
            self._stale -= 1
            self.stats["stale_popped"] += 1
        return None

    def pop(self, now: float) -> QueuedRequest | None:
        item = self.peek(now)
        if item is not None:
            heapq.heappop(self._heap)
            del self._by_id[item.request.req_id]
        return item

    def items(self) -> list[QueuedRequest]:
        """Queued items in arrival order (an O(n) snapshot, for samplers)."""
        self.stats["item_visits"] += len(self._by_id)
        return list(self._by_id.values())

    def __iter__(self) -> Iterator[QueuedRequest]:
        return iter(self.items())

    @property
    def _items(self) -> list[QueuedRequest]:
        # Backwards-compatible view of the old list layout (arrival order).
        return self.items()

    def wait_times(self, now: float) -> list[float]:
        self.stats["item_visits"] += len(self._by_id)
        return [now - q.enqueued_at for q in self._by_id.values()]
