"""The leader's pending-request queue with priority aging.

"An additional prioritization scheme will also be needed to prevent
starvation of tasks. That is, as a task waits to be dispatched its priority
will be increased to insure it will eventually be dispatched even if that
results in a globally suboptimal schedule. Authorized users will be able to
modify the priorities of particular applications." (§4.3)

Effective priority = base priority + aging_rate × wait time. The queue pops
in descending effective priority; with ``aging_rate = 0`` this degrades to
strict base-priority order, which is what benchmark E4 contrasts against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.scheduler.messages import ResourceRequest


@dataclass
class QueuedRequest:
    request: "ResourceRequest"
    enqueued_at: float
    attempts: int = 0

    def effective_priority(self, now: float, aging_rate: float) -> float:
        return self.request.priority + aging_rate * (now - self.enqueued_at)


class AgingQueue:
    """Pending requests, served in aged-priority order."""

    def __init__(self, aging_rate: float = 0.1) -> None:
        self.aging_rate = aging_rate
        self._items: list[QueuedRequest] = []

    def push(self, request: "ResourceRequest", now: float) -> QueuedRequest:
        """Enqueue (idempotent: re-pushing a queued req_id returns the
        existing item, preserving its age — replication may deliver
        duplicates)."""
        for item in self._items:
            if item.request.req_id == request.req_id:
                return item
        item = QueuedRequest(request, now)
        self._items.append(item)
        return item

    def __contains__(self, req_id: str) -> bool:
        return any(item.request.req_id == req_id for item in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def peek(self, now: float) -> QueuedRequest | None:
        """Highest effective priority first; FIFO among equals."""
        if not self._items:
            return None
        return max(
            self._items,
            key=lambda q: (q.effective_priority(now, self.aging_rate), -q.enqueued_at),
        )

    def pop(self, now: float) -> QueuedRequest | None:
        item = self.peek(now)
        if item is not None:
            self._items.remove(item)
        return item

    def remove(self, req_id: str) -> bool:
        for item in self._items:
            if item.request.req_id == req_id:
                self._items.remove(item)
                return True
        return False

    def wait_times(self, now: float) -> list[float]:
        return [now - q.enqueued_at for q in self._items]
