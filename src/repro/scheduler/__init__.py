"""The runtime bidding scheduler (Figure 3, §5).

"After identifying the groups that contain the types of machines required
to run the application, the execution program sends a request message to
each group leader. ... Once the request is received by the group leader, it
is sent to each machine in the group. Each machine, based on current load
and availability, sends a 'bid' back to the group leader ... The group
leader collects the bids, determines which are the 'best' processors to
allocate to the application, and then sends a reply back to the execution
program. If there are insufficient resources within a group a message to
that effect is returned to the execution program."

Components:

- :class:`SchedulerDaemon` — "a scheduling/dispatching daemon that runs in
  each workstation authorized to host remote executions"; an
  :class:`~repro.isis.IsisMember` of its machine-class group. The oldest
  member acts as group leader, fielding requests, broadcasting
  state-disclosure, sorting bids by load, and replying (or queueing
  unsatisfiable requests with priority aging, §4.3).
- :class:`ExecutionProgram` — "an execution program that executes
  applications on behalf of a local user": walks an application
  description, requests resources per group, maps allocated machines to
  task instances with a placement policy, submits to the runtime manager,
  and notifies daemons on termination.
- :mod:`repro.scheduler.policies` — bid-to-task assignment policies,
  including the utilization-first rule of the §4.3 machine-A example.
- :class:`GroupDirectory` — class → current leader lookup, maintained by
  the daemons' view-change callbacks.
"""

from repro.scheduler.messages import (
    AllocationError_,
    AllocationReply,
    Allocation,
    CellBids,
    DelegateRequest,
    DiscloseProbe,
    ExecutionInfo,
    ModuleNeed,
    ProbeReply,
    ResourceRequest,
    MachineBid,
    SetPriority,
    TerminateNotice,
)
from repro.scheduler.directory import GroupDirectory
from repro.scheduler.daemon import DaemonConfig, SchedulerDaemon
from repro.scheduler.hierarchy import CellMap, build_cells
from repro.scheduler.policies import (
    PlacementPolicy,
    greedy_assignment,
    load_sorted_assignment,
    random_assignment,
    round_robin_assignment,
    site_packed_assignment,
    utilization_first_assignment,
)
from repro.scheduler.queue import AgingQueue, QueuedRequest
from repro.scheduler.execution_program import AppRun, ExecutionProgram

__all__ = [
    "SchedulerDaemon",
    "DaemonConfig",
    "ExecutionProgram",
    "AppRun",
    "GroupDirectory",
    "ResourceRequest",
    "ModuleNeed",
    "MachineBid",
    "AllocationReply",
    "AllocationError_",
    "Allocation",
    "ExecutionInfo",
    "TerminateNotice",
    "SetPriority",
    "PlacementPolicy",
    "load_sorted_assignment",
    "greedy_assignment",
    "random_assignment",
    "round_robin_assignment",
    "utilization_first_assignment",
    "site_packed_assignment",
    "AgingQueue",
    "QueuedRequest",
    "CellMap",
    "build_cells",
    "DelegateRequest",
    "DiscloseProbe",
    "ProbeReply",
    "CellBids",
]
