"""The scheduling/dispatching daemon.

One :class:`SchedulerDaemon` runs on every machine "authorized to host
remote executions". Daemons of one machine class form an Isis process
group; the group's coordinator (oldest member) acts as group leader and
runs the C-style ``groupLeader()`` loop from §5:

    receiveRequest → bcastRequestToGroup → collect bids →
    sortBidsByLoad → returnBids | returnAllocError

Every daemon (leader included) answers the state-disclosure broadcast with
a bid when it is "not already excessively loaded and can run remote jobs".
Unsatisfiable requests flagged ``queue_if_insufficient`` enter the leader's
:class:`~repro.scheduler.queue.AgingQueue` and are retried periodically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.isis.member import ALL, IsisConfig, IsisMember
from repro.isis.views import View
from repro.netsim.host import Address
from repro.scheduler.directory import GroupDirectory
from repro.scheduler.messages import (
    AllocationError_,
    AllocationReply,
    ExecutionInfo,
    MachineBid,
    ResourceRequest,
    SetPriority,
    TerminateNotice,
)
from repro.scheduler.queue import AgingQueue
from repro.trace.context import TraceContext, trace_fields

if TYPE_CHECKING:  # pragma: no cover
    from repro.machines.machine import Machine


@dataclass
class DaemonConfig:
    """Daemon policy knobs.

    Attributes:
        busy_threshold: above this load a daemon declines to bid
            ("not already excessively loaded").
        per_instance_load: load attributed to each hosted VCE instance when
            reporting "current load".
        bid_timeout: how long the leader collects bids before deciding.
        retry_interval: queued-request retry period.
        aging_rate: priority gained per second of queue wait (§4.3).
        accepts_remote: whether this machine hosts remote executions at all.
    """

    busy_threshold: float = 0.8
    per_instance_load: float = 0.25
    bid_timeout: float = 1.0
    retry_interval: float = 2.0
    aging_rate: float = 0.1
    accepts_remote: bool = True


class SchedulerDaemon(IsisMember):
    """See module docstring.

    Args:
        name: process name (conventionally ``"vced"``).
        machine: this host's machine description.
        directory: shared leader directory kept fresh from view changes.
        contacts: existing group members to join through.
        config: daemon policy; isis_config: group-protocol timing.
    """

    def __init__(
        self,
        name: str,
        machine: "Machine",
        directory: GroupDirectory,
        contacts: list[Address] | None = None,
        config: DaemonConfig | None = None,
        isis_config: IsisConfig | None = None,
    ) -> None:
        group_name = f"vce.{machine.arch_class.value}"
        super().__init__(name, group_name, contacts, isis_config)
        self.machine = machine
        self.directory = directory
        self.daemon_config = config or DaemonConfig()
        self.hosted: dict[str, int] = {}  # app id -> instances hosted here
        self._hosted_total = 0  # incrementally-maintained sum of hosted values
        # load is asked for several times per disclosure (can-bid check, the
        # bid itself, decline emits); cache it per (timestamp, hosted) epoch
        self._load_cache_time = -1.0
        self._load_cache = 0.0
        self.pending_queue = AgingQueue(self.daemon_config.aging_rate)
        self._collecting: dict[str, ResourceRequest] = {}
        self._first_enqueued: dict[str, float] = {}
        self._bid_spans: dict[str, TraceContext] = {}  # req_id -> bidding span
        self.bids_made = 0
        self.requests_led = 0
        #: operator drain: a draining daemon declines every new bid (its
        #: running instances finish normally) until undrained — flipped by
        #: ``VirtualComputingEnvironment.drain_host`` / the control plane
        self.draining = False
        #: called with each departed member's host name when this daemon,
        #: as group coordinator, sees the member drop out of the view —
        #: the failover layer hooks here for peer takeover of orphaned
        #: instances (see repro.migration.failover)
        self.host_lost_observers: list[Callable[[str], None]] = []

    def _tel(self):
        """The live metrics registry, or None when telemetry is off. Looked
        up per call: the daemon is constructed before it is bound to a
        host (and hence before it can reach the simulator)."""
        return self.sim.telemetry if self.host is not None else None

    # ------------------------------------------------------------------ load

    def hosted_instances(self) -> int:
        return self._hosted_total

    def current_load(self) -> float:
        """Background (locally-initiated) load plus VCE-hosted work.
        Cached per simulation timestamp (hosting changes invalidate)."""
        now = self.now
        if now != self._load_cache_time:
            self._load_cache = (
                self.machine.load_at(now)
                + self.daemon_config.per_instance_load * self._hosted_total
            )
            self._load_cache_time = now
        return self._load_cache

    def can_bid(self) -> bool:
        return (
            self.daemon_config.accepts_remote
            and not self.draining
            and self.current_load() < self.daemon_config.busy_threshold
        )

    def make_bid(self) -> MachineBid:
        return MachineBid(
            machine=self.machine.name,
            daemon=self.address,
            load=self.current_load(),
            speed=self.machine.speed,
            arch_class=self.machine.arch_class,
            free_memory_mb=self.machine.memory_mb,
            site=str(self.machine.attributes.get("site", "")),
        )

    # ------------------------------------------------------- membership hooks

    def on_view_change(self, view: View, joined: list[Address], left: list[Address]) -> None:
        if self.is_coordinator:
            self.directory.update(
                self.machine.arch_class, self.address, list(view.members), view.view_id
            )
            self.emit("sched.leader", group=self.group, view_id=view.view_id)
            if self.pending_queue:
                self.set_timer(self.daemon_config.retry_interval, "retry-queue")
            # peer takeover: the surviving coordinator announces departed
            # members so the execution layer can reclaim orphaned work
            for member in left:
                self.emit("sched.peer_lost", group=self.group, host=member.host)
                tel = self._tel()
                if tel is not None:
                    tel.counter(
                        "daemon_peers_lost_total",
                        "group members dropped from a view (leader-observed)",
                    ).inc()
                for observer in self.host_lost_observers:
                    observer(member.host)

    # ----------------------------------------------------------- leader side

    def on_message(self, src: Address, payload: Any) -> None:
        if isinstance(payload, ResourceRequest):
            self._on_resource_request(payload)
            return
        if isinstance(payload, ExecutionInfo):
            self.hosted[payload.app] = self.hosted.get(payload.app, 0) + len(payload.tasks)
            self._hosted_total += len(payload.tasks)
            self._load_cache_time = -1.0
            self.emit("sched.hosting", app=payload.app, count=len(payload.tasks))
            return
        if isinstance(payload, SetPriority):
            self._on_set_priority(payload)
            return
        if isinstance(payload, TerminateNotice):
            if payload.app in self.hosted:
                self._hosted_total -= self.hosted.pop(payload.app)
                self._load_cache_time = -1.0
                self.emit("sched.released", app=payload.app)
                # capacity freed: give queued requests another chance
                if self.is_coordinator and self.pending_queue:
                    self.set_timer(0.0, "retry-queue")
            return
        super().on_message(src, payload)

    def _on_resource_request(self, request: ResourceRequest) -> None:
        if not self.joined:
            return
        if not self.is_coordinator:
            # forward to the leader (the execution program may hold a stale
            # directory entry across a leader failure)
            assert self.view is not None
            self.send(self.view.coordinator, request, size=512)
            return
        if request.queue_if_insufficient and (self.pending_queue or self._collecting):
            # a backlog exists: fresh queueable arrivals take their place in
            # the aged-priority order rather than racing the queue (§4.3)
            first = self._first_enqueued.setdefault(request.req_id, self.now)
            if request.req_id not in self.pending_queue and request.req_id not in self._collecting:
                # replicate the queue entry to the whole group so it
                # survives a leader crash (cbcast self-delivers, so our own
                # queue is updated synchronously too)
                self.cbcast("queue_add", (request, first), size=512)
            if not self._collecting:
                self.set_timer(0.0, "retry-queue")
            return
        self._start_bidding(request)

    def _on_set_priority(self, msg: SetPriority) -> None:
        """Runtime priority change for a queued request (§4.3). Leaders
        apply and replicate; non-leaders forward."""
        if not self.joined:
            return
        if not self.is_coordinator:
            assert self.view is not None
            self.send(self.view.coordinator, msg, size=128)
            return
        if msg.req_id in self.pending_queue:
            self.cbcast("queue_reprioritize", (msg.req_id, msg.priority), size=128)

    def _start_bidding(self, request: ResourceRequest) -> None:
        self.requests_led += 1
        tel = self._tel()
        if tel is not None:
            tel.counter("sched_requests_total", "bidding rounds led").inc()
        # each bidding round is its own span under the requester's
        # allocation span (queued requests get a fresh span per retry)
        if request.trace is not None:
            self._bid_spans[request.req_id] = request.trace.child(
                self.sim.ids.next("span")
            )
        self.emit("sched.request", app=request.app, req_id=request.req_id,
                  needed=request.total_min,
                  **trace_fields(self._bid_spans.get(request.req_id)))
        self._collecting[request.req_id] = request
        self.group_request(
            ("disclose", request.req_id),
            n_wanted=ALL,
            timeout=self.daemon_config.bid_timeout,
            on_done=lambda replies, timed_out: self._bids_collected(
                request, replies, timed_out
            ),
        )

    def _bids_collected(
        self,
        request: ResourceRequest,
        replies: list[tuple[Address, Any]],
        timed_out: bool,
    ) -> None:
        self._collecting.pop(request.req_id, None)
        bid_span = self._bid_spans.pop(request.req_id, None)
        if not self.alive or not self.is_coordinator:
            return
        bids = [b for (_, b) in replies if isinstance(b, MachineBid)]
        # sortBidsByLoad(); ties broken by speed (faster first), then name
        bids.sort(key=lambda b: (b.load, -b.speed, b.machine))
        tel = self._tel()
        if tel is not None:
            tel.histogram(
                "sched_bid_count", "bids collected per round", start=1.0, factor=2.0, count=10
            ).observe(float(len(bids)))
        if len(bids) < request.total_min:
            if tel is not None:
                tel.counter(
                    "sched_alloc_errors_total", "bidding rounds with too few bids"
                ).inc()
            queued = request.queue_if_insufficient
            self.emit(
                "sched.alloc_error",
                app=request.app,
                req_id=request.req_id,
                requested=request.total_min,
                available=len(bids),
                queued=queued,
                **trace_fields(bid_span),
            )
            self.send(
                request.reply_to,
                AllocationError_(request.req_id, request.total_min, len(bids), queued),
                size=256,
            )
            if queued and request.req_id not in self.pending_queue:
                # preserve the original enqueue time across retries so the
                # request keeps aging instead of resetting (§4.3); replicate
                # it group-wide so it survives a leader crash
                first = self._first_enqueued.setdefault(request.req_id, self.now)
                self.cbcast("queue_add", (request, first), size=512)
            if self.pending_queue:
                self.set_timer(self.daemon_config.retry_interval, "retry-queue")
            return
        self._first_enqueued.pop(request.req_id, None)
        if request.req_id in self.pending_queue:
            self.cbcast("queue_remove", request.req_id, size=128)
        if tel is not None:
            tel.counter("sched_allocs_total", "successful allocations").inc()
        self.emit("sched.alloc", app=request.app, req_id=request.req_id, bids=len(bids),
                  **trace_fields(bid_span))
        self.send(request.reply_to, AllocationReply(request.req_id, tuple(bids)), size=1024)
        if self.pending_queue:
            self.set_timer(self.daemon_config.retry_interval, "retry-queue")

    # ------------------------------------------------------------ member side

    def on_cbcast(self, sender: Address, kind: str, payload: Any) -> None:
        """Queue replication: every daemon mirrors the leader's pending
        queue, so a new leader resumes queued work after a takeover
        ("fault-tolerance of the group leader ... through redundancy")."""
        if kind == "queue_add":
            request, first = payload
            self._first_enqueued.setdefault(request.req_id, first)
            self.pending_queue.push(request, first)
            if self.is_coordinator and not self._collecting and not self.has_timer("retry-queue"):
                self.set_timer(self.daemon_config.retry_interval, "retry-queue")
        elif kind == "queue_remove":
            self.pending_queue.remove(payload)
            self._first_enqueued.pop(payload, None)
        elif kind == "queue_reprioritize":
            req_id, priority = payload
            if self.pending_queue.reprioritize(req_id, priority):
                if self.is_coordinator:
                    self.emit("sched.reprioritized", req_id=req_id, priority=priority)

    def on_group_request(self, requester: Address, body: Any, reply: Callable[[Any], None]) -> None:
        if isinstance(body, tuple) and body and body[0] == "disclose":
            tel = self._tel()
            if self.can_bid():
                self.bids_made += 1
                if tel is not None:
                    tel.counter("sched_bids_total", "bids offered").inc()
                reply(self.make_bid())
            else:
                if tel is not None:
                    tel.counter(
                        "sched_declines_total", "disclosures declined (too loaded)"
                    ).inc()
                self.emit("sched.decline", load=self.current_load())
            return

    # ---------------------------------------------------------------- timers

    def on_timer(self, key: str) -> None:
        if key == "retry-queue":
            self._retry_queued()
        else:
            super().on_timer(key)

    def _retry_queued(self) -> None:
        if not self.is_coordinator or not self.pending_queue:
            return
        if self._collecting:
            # one bidding round at a time: queue order must not be bypassed
            # by overlapping disclosure rounds
            self.set_timer(self.daemon_config.retry_interval, "retry-queue")
            return
        item = self.pending_queue.peek(self.now)
        if item is None or item.request.req_id in self._collecting:
            return
        item.attempts += 1
        tel = self._tel()
        if tel is not None:
            tel.counter("sched_retries_total", "queued-request retries").inc()
            tel.histogram(
                "sched_queue_wait_seconds", "wait before a queued retry"
            ).observe(self.now - item.enqueued_at)
        self.emit(
            "sched.retry",
            req_id=item.request.req_id,
            attempts=item.attempts,
            waited=self.now - item.enqueued_at,
            effective_priority=item.effective_priority(self.now, self.pending_queue.aging_rate),
            **trace_fields(item.request.trace),
        )
        self._start_bidding(item.request)
