"""The scheduling/dispatching daemon.

One :class:`SchedulerDaemon` runs on every machine "authorized to host
remote executions". Daemons of one machine class form an Isis process
group; the group's coordinator (oldest member) acts as group leader and
runs the C-style ``groupLeader()`` loop from §5:

    receiveRequest → bcastRequestToGroup → collect bids →
    sortBidsByLoad → returnBids | returnAllocError

Every daemon (leader included) answers the state-disclosure broadcast with
a bid when it is "not already excessively loaded and can run remote jobs".
Unsatisfiable requests flagged ``queue_if_insufficient`` enter the leader's
:class:`~repro.scheduler.queue.AgingQueue` and are retried periodically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.isis.member import ALL, IsisConfig, IsisMember
from repro.isis.views import View
from repro.netsim.host import Address
from repro.scheduler.directory import GroupDirectory
from repro.scheduler.hierarchy import CellMap, build_cells
from repro.scheduler.messages import (
    AllocationError_,
    AllocationReply,
    CellBids,
    DelegateRequest,
    DiscloseProbe,
    ExecutionInfo,
    MachineBid,
    ProbeReply,
    ResourceRequest,
    SetPriority,
    TerminateNotice,
)
from repro.scheduler.queue import AgingQueue
from repro.trace.context import TraceContext, trace_fields

if TYPE_CHECKING:  # pragma: no cover
    from repro.machines.machine import Machine


@dataclass
class DaemonConfig:
    """Daemon policy knobs.

    Attributes:
        busy_threshold: above this load a daemon declines to bid
            ("not already excessively loaded").
        per_instance_load: load attributed to each hosted VCE instance when
            reporting "current load".
        bid_timeout: how long the leader collects bids before deciding.
        retry_interval: queued-request retry period.
        aging_rate: priority gained per second of queue wait (§4.3).
        accepts_remote: whether this machine hosts remote executions at all.
        leader_fanout: number of sub-leader cells the group leader splits
            its view into (see :mod:`repro.scheduler.hierarchy`).  1 (the
            default) keeps the paper's flat full-group broadcast,
            byte-identical to pre-hierarchy builds; >1 delegates each
            bidding round to consistent-hash-assigned cells and escalates
            in cached-load order only while bids run short.
    """

    busy_threshold: float = 0.8
    per_instance_load: float = 0.25
    bid_timeout: float = 1.0
    retry_interval: float = 2.0
    aging_rate: float = 0.1
    accepts_remote: bool = True
    leader_fanout: int = 1


@dataclass
class _HierRound:
    """Root-leader state for one hierarchical bidding round."""

    request: ResourceRequest
    cell_map: CellMap
    order: list[int]  # cells in polling order (primary first)
    next_index: int = 0  # next cell in *order* to delegate to
    awaiting: int | None = None  # delegated cell that has not reported
    reports: dict[int, tuple[MachineBid, ...]] = field(default_factory=dict)
    polled: int = 0  # members covered by reported cells


@dataclass
class _CellRound:
    """Sub-leader state for one delegated cell poll."""

    delegate: DelegateRequest
    pending: int = 0  # probes still outstanding
    bids: list[MachineBid] = field(default_factory=list)


class SchedulerDaemon(IsisMember):
    """See module docstring.

    Args:
        name: process name (conventionally ``"vced"``).
        machine: this host's machine description.
        directory: shared leader directory kept fresh from view changes.
        contacts: existing group members to join through.
        config: daemon policy; isis_config: group-protocol timing.
    """

    def __init__(
        self,
        name: str,
        machine: "Machine",
        directory: GroupDirectory,
        contacts: list[Address] | None = None,
        config: DaemonConfig | None = None,
        isis_config: IsisConfig | None = None,
    ) -> None:
        group_name = f"vce.{machine.arch_class.value}"
        super().__init__(name, group_name, contacts, isis_config)
        self.machine = machine
        self.directory = directory
        self.daemon_config = config or DaemonConfig()
        self.hosted: dict[str, int] = {}  # app id -> instances hosted here
        self._hosted_total = 0  # incrementally-maintained sum of hosted values
        # load is asked for several times per disclosure (can-bid check, the
        # bid itself, decline emits); cache it per (timestamp, hosted) epoch
        self._load_cache_time = -1.0
        self._load_cache = 0.0
        self.pending_queue = AgingQueue(self.daemon_config.aging_rate)
        self._collecting: dict[str, ResourceRequest] = {}
        self._first_enqueued: dict[str, float] = {}
        #: coordinatorship as of the last view change — a daemon that led a
        #: minority view and lost the merge must hand its queue mirror over
        self._led_previous_view = False
        self._bid_spans: dict[str, TraceContext] = {}  # req_id -> bidding span
        # hierarchical bidding (leader_fanout > 1): the view's cell
        # partition, live rounds at this root, live cell polls at this
        # sub-leader, and the cached per-cell aggregate load that orders
        # escalation (see repro.scheduler.hierarchy)
        self._cell_map: CellMap | None = None
        self._hier_rounds: dict[str, _HierRound] = {}
        self._cell_rounds: dict[str, _CellRound] = {}
        self._cell_loads: dict[int, float] = {}
        self.delegations_sent = 0
        self.bids_made = 0
        self.requests_led = 0
        #: members covered by this leader's disclosure fan-outs (flat: the
        #: whole view per round; hierarchical: only the cells polled) — the
        #: quantity the hierarchy makes sub-linear, reported per round by
        #: the scale bench as ``bid_fanout_per_round``
        self.members_polled = 0
        #: operator drain: a draining daemon declines every new bid (its
        #: running instances finish normally) until undrained — flipped by
        #: ``VirtualComputingEnvironment.drain_host`` / the control plane
        self.draining = False
        #: called with each departed member's host name when this daemon,
        #: as group coordinator, sees the member drop out of the view —
        #: the failover layer hooks here for peer takeover of orphaned
        #: instances (see repro.migration.failover)
        self.host_lost_observers: list[Callable[[str], None]] = []

    def _tel(self):
        """The live metrics registry, or None when telemetry is off. Looked
        up per call: the daemon is constructed before it is bound to a
        host (and hence before it can reach the simulator)."""
        return self.sim.telemetry if self.host is not None else None

    # ------------------------------------------------------------------ load

    def hosted_instances(self) -> int:
        return self._hosted_total

    def current_load(self) -> float:
        """Background (locally-initiated) load plus VCE-hosted work.
        Cached per simulation timestamp (hosting changes invalidate)."""
        hb = self.sim.hb
        if hb is not None:
            # racy-by-design heuristic: a bid may read the load before or
            # after a concurrent hosting update lands; either answer is a
            # legal bid
            hb.read(f"load:{self.machine.name}", "R002", "daemon.current_load")  # hbrace: ok(R002)
        now = self.now
        if now != self._load_cache_time:
            self._load_cache = (
                self.machine.load_at(now)
                + self.daemon_config.per_instance_load * self._hosted_total
            )
            self._load_cache_time = now
        return self._load_cache

    def can_bid(self) -> bool:
        return (
            self.daemon_config.accepts_remote
            and not self.draining
            and self.current_load() < self.daemon_config.busy_threshold
        )

    def make_bid(self) -> MachineBid:
        return MachineBid(
            machine=self.machine.name,
            daemon=self.address,
            load=self.current_load(),
            speed=self.machine.speed,
            arch_class=self.machine.arch_class,
            free_memory_mb=self.machine.memory_mb,
            site=str(self.machine.attributes.get("site", "")),
        )

    # ------------------------------------------------------- membership hooks

    def on_view_change(self, view: View, joined: list[Address], left: list[Address]) -> None:
        if self.is_coordinator:
            self.directory.update(
                self.machine.arch_class, self.address, list(view.members), view.view_id
            )
            self.emit("sched.leader", group=self.group, view_id=view.view_id)
            if self.pending_queue:
                self.set_timer(self.daemon_config.retry_interval, "retry-queue")
            # peer takeover: the surviving coordinator announces departed
            # members so the execution layer can reclaim orphaned work
            for member in left:
                self.emit("sched.peer_lost", group=self.group, host=member.host)
                tel = self._tel()
                if tel is not None:
                    tel.counter(
                        "daemon_peers_lost_total",
                        "group members dropped from a view (leader-observed)",
                    ).inc()
                for observer in self.host_lost_observers:
                    observer(member.host)
        elif self._led_previous_view and self.pending_queue:
            # A group merge after a partition can strand queue entries that
            # were replicated only on our side of the split: we led a
            # minority view, queued work there, and lost coordinatorship in
            # the merge — the winning coordinator never saw those entries.
            # Re-replicate our mirror in the merged view: push is idempotent
            # by req_id, the original enqueue time rides along so aging is
            # preserved, and the new coordinator's queue_add handler arms
            # its own retry timer.
            hb = self.sim.hb
            if hb is not None:
                hb.read(f"queue:{self.machine.name}", "R001", "daemon.queue_mirror")
            for item in self.pending_queue.items():
                self.cbcast(
                    "queue_add",
                    (item.request, self._first_enqueued.get(item.request.req_id, item.enqueued_at)),
                    size=512,
                )
        self._led_previous_view = self.is_coordinator

    # ----------------------------------------------------------- leader side

    def on_message(self, src: Address, payload: Any) -> None:
        if isinstance(payload, ResourceRequest):
            self._on_resource_request(payload)
            return
        if isinstance(payload, ExecutionInfo):
            hb = self.sim.hb
            if hb is not None:
                # commutative increment: hosting updates from concurrent
                # allocations may land in any order
                hb.write(f"load:{self.machine.name}", "R002", "daemon.hosting")  # hbrace: ok(R002)
            self.hosted[payload.app] = self.hosted.get(payload.app, 0) + len(payload.tasks)
            self._hosted_total += len(payload.tasks)
            self._load_cache_time = -1.0
            self.emit("sched.hosting", app=payload.app, count=len(payload.tasks))
            return
        if isinstance(payload, SetPriority):
            self._on_set_priority(payload)
            return
        if isinstance(payload, DelegateRequest):
            self._on_delegate(payload)
            return
        if isinstance(payload, DiscloseProbe):
            self.send(payload.reply_to, ProbeReply(payload.req_id, self._disclose_bid()), size=256)
            return
        if isinstance(payload, ProbeReply):
            self._on_probe_reply(payload)
            return
        if isinstance(payload, CellBids):
            self._on_cell_bids(payload)
            return
        if isinstance(payload, TerminateNotice):
            if payload.app in self.hosted:
                hb = self.sim.hb
                if hb is not None:
                    # guarded pop (`payload.app in self.hosted`): a release
                    # arriving before/after an unrelated hosting update is safe
                    hb.write(f"load:{self.machine.name}", "R002", "daemon.released")  # hbrace: ok(R002)
                self._hosted_total -= self.hosted.pop(payload.app)
                self._load_cache_time = -1.0
                self.emit("sched.released", app=payload.app)
                # capacity freed: give queued requests another chance
                if self.is_coordinator and self.pending_queue:
                    self.set_timer(0.0, "retry-queue")
            return
        super().on_message(src, payload)

    def _on_resource_request(self, request: ResourceRequest) -> None:
        if not self.joined:
            return
        if not self.is_coordinator:
            # forward to the leader (the execution program may hold a stale
            # directory entry across a leader failure)
            assert self.view is not None
            self.send(self.view.coordinator, request, size=512)
            return
        if request.queue_if_insufficient and (self.pending_queue or self._collecting):
            # a backlog exists: fresh queueable arrivals take their place in
            # the aged-priority order rather than racing the queue (§4.3)
            first = self._first_enqueued.setdefault(request.req_id, self.now)
            if request.req_id not in self.pending_queue and request.req_id not in self._collecting:
                # replicate the queue entry to the whole group so it
                # survives a leader crash (cbcast self-delivers, so our own
                # queue is updated synchronously too)
                self.cbcast("queue_add", (request, first), size=512)
            if not self._collecting:
                self.set_timer(0.0, "retry-queue")
            return
        self._start_bidding(request)

    def _on_set_priority(self, msg: SetPriority) -> None:
        """Runtime priority change for a queued request (§4.3). Leaders
        apply and replicate; non-leaders forward."""
        if not self.joined:
            return
        if not self.is_coordinator:
            assert self.view is not None
            self.send(self.view.coordinator, msg, size=128)
            return
        if msg.req_id in self.pending_queue:
            self.cbcast("queue_reprioritize", (msg.req_id, msg.priority), size=128)

    def _start_bidding(self, request: ResourceRequest) -> None:
        self.requests_led += 1
        tel = self._tel()
        if tel is not None:
            tel.counter("sched_requests_total", "bidding rounds led").inc()
        # each bidding round is its own span under the requester's
        # allocation span (queued requests get a fresh span per retry)
        if request.trace is not None:
            self._bid_spans[request.req_id] = request.trace.child(
                self.sim.ids.next("span")
            )
        self.emit("sched.request", app=request.app, req_id=request.req_id,
                  needed=request.total_min,
                  **trace_fields(self._bid_spans.get(request.req_id)))
        self._collecting[request.req_id] = request
        if (
            self.daemon_config.leader_fanout > 1
            and self.view is not None
            and len(self.view.members) > 1
        ):
            self._start_hier_round(request)
            return
        if self.view is not None:
            self.members_polled += len(self.view.members)
        self.group_request(
            ("disclose", request.req_id),
            n_wanted=ALL,
            timeout=self.daemon_config.bid_timeout,
            on_done=lambda replies, timed_out: self._bids_collected(
                request, replies, timed_out
            ),
        )

    def _bids_collected(
        self,
        request: ResourceRequest,
        replies: list[tuple[Address, Any]],
        timed_out: bool,
    ) -> None:
        self._collecting.pop(request.req_id, None)
        bid_span = self._bid_spans.pop(request.req_id, None)
        if not self.alive or not self.is_coordinator:
            return
        bids = [b for (_, b) in replies if isinstance(b, MachineBid)]
        self._finish_round(request, bids, bid_span)

    def _finish_round(
        self,
        request: ResourceRequest,
        bids: list[MachineBid],
        bid_span: TraceContext | None,
    ) -> None:
        """Shared decision tail of a bidding round (flat or hierarchical):
        sort, reply-or-error, and queue maintenance."""
        # sortBidsByLoad(); ties broken by speed (faster first), then name
        bids.sort(key=lambda b: (b.load, -b.speed, b.machine))
        tel = self._tel()
        if tel is not None:
            tel.histogram(
                "sched_bid_count", "bids collected per round", start=1.0, factor=2.0, count=10
            ).observe(float(len(bids)))
        if len(bids) < request.total_min:
            if tel is not None:
                tel.counter(
                    "sched_alloc_errors_total", "bidding rounds with too few bids"
                ).inc()
            queued = request.queue_if_insufficient
            self.emit(
                "sched.alloc_error",
                app=request.app,
                req_id=request.req_id,
                requested=request.total_min,
                available=len(bids),
                queued=queued,
                **trace_fields(bid_span),
            )
            self.send(
                request.reply_to,
                AllocationError_(request.req_id, request.total_min, len(bids), queued),
                size=256,
            )
            if queued and request.req_id not in self.pending_queue:
                # preserve the original enqueue time across retries so the
                # request keeps aging instead of resetting (§4.3); replicate
                # it group-wide so it survives a leader crash
                first = self._first_enqueued.setdefault(request.req_id, self.now)
                self.cbcast("queue_add", (request, first), size=512)
            if self.pending_queue:
                self.set_timer(self.daemon_config.retry_interval, "retry-queue")
            return
        self._first_enqueued.pop(request.req_id, None)
        if request.req_id in self.pending_queue:
            self.cbcast("queue_remove", request.req_id, size=128)
        if tel is not None:
            tel.counter("sched_allocs_total", "successful allocations").inc()
        self.emit("sched.alloc", app=request.app, req_id=request.req_id, bids=len(bids),
                  **trace_fields(bid_span))
        self.send(request.reply_to, AllocationReply(request.req_id, tuple(bids)), size=1024)
        if self.pending_queue:
            self.set_timer(self.daemon_config.retry_interval, "retry-queue")

    # ---------------------------------------------- hierarchical bidding root

    def _cell_map_for_view(self) -> CellMap:
        assert self.view is not None
        if self._cell_map is None or self._cell_map.view_id != self.view.view_id:
            self._cell_map = build_cells(
                list(self.view.members),
                self.daemon_config.leader_fanout,
                self.view.view_id,
            )
            tel = self._tel()
            if tel is not None:
                tel.gauge(
                    "sched_cells", "occupied sub-leader cells in the current view"
                ).set(len(self._cell_map.cell_ids))
        return self._cell_map

    def _start_hier_round(self, request: ResourceRequest) -> None:
        if request.req_id in self._hier_rounds:
            return  # a requester retry raced an in-flight round
        cell_map = self._cell_map_for_view()
        round_ = _HierRound(
            request,
            cell_map,
            cell_map.escalation_order(request.req_id, self._cell_loads),
        )
        self._hier_rounds[request.req_id] = round_
        self._delegate_next(round_)

    def _delegate_next(self, round_: _HierRound) -> None:
        cell = round_.order[round_.next_index]
        round_.next_index += 1
        round_.awaiting = cell
        members = round_.cell_map.members_of(cell)
        sub_leader = round_.cell_map.sub_leader(cell)
        escalated = round_.next_index > 1
        self.delegations_sent += 1
        self.members_polled += len(members)
        tel = self._tel()
        if tel is not None:
            tel.counter("sched_delegations_total", "cell polls delegated").inc()
            if escalated:
                tel.counter(
                    "sched_escalations_total",
                    "delegations beyond a request's primary cell",
                ).inc()
        req_id = round_.request.req_id
        self.emit(
            "sched.delegate",
            req_id=req_id,
            cell=cell,
            sub_leader=sub_leader.host,
            members=len(members),
            escalated=escalated,
            **trace_fields(self._bid_spans.get(req_id)),
        )
        # generous bound: delegate hop + the sub-leader's own collection
        # window + report hop; a dead sub-leader costs one window, not the
        # round
        self.set_timer(self.daemon_config.bid_timeout * 2 + 0.5, f"hier:{req_id}")
        message = DelegateRequest(round_.request, cell, members, self.address)
        if sub_leader == self.address:
            self._on_delegate(message)
        else:
            self.send(sub_leader, message, size=768)

    def _on_cell_bids(self, msg: CellBids) -> None:
        # cache the aggregate even when the round is gone: stale reports
        # still teach the root where capacity is
        self._cell_loads[msg.cell] = msg.mean_load
        round_ = self._hier_rounds.get(msg.req_id)
        if round_ is None or msg.cell in round_.reports:
            return
        round_.reports[msg.cell] = msg.bids
        round_.polled += msg.polled
        if round_.awaiting == msg.cell:
            round_.awaiting = None
            self.cancel_timer(f"hier:{msg.req_id}")
        self.emit(
            "sched.cell_bids",
            req_id=msg.req_id,
            cell=msg.cell,
            bids=len(msg.bids),
            polled=msg.polled,
        )
        self._hier_check(round_)

    def _hier_timeout(self, req_id: str) -> None:
        round_ = self._hier_rounds.get(req_id)
        if round_ is None or round_.awaiting is None:
            return
        tel = self._tel()
        if tel is not None:
            tel.counter(
                "sched_cell_timeouts_total", "cell polls that never reported"
            ).inc()
        self.emit("sched.cell_timeout", req_id=req_id, cell=round_.awaiting)
        round_.awaiting = None
        self._hier_check(round_)

    def _hier_check(self, round_: _HierRound) -> None:
        request = round_.request
        bids = [
            bid
            for cell in round_.order
            if cell in round_.reports
            for bid in round_.reports[cell]
        ]
        if len(bids) < request.total_min:
            if round_.awaiting is not None:
                return  # a cell is still being polled
            if round_.next_index < len(round_.order):
                self._delegate_next(round_)
                return
        # enough bids, or every cell polled: decide
        self._hier_rounds.pop(request.req_id, None)
        self.cancel_timer(f"hier:{request.req_id}")
        self._collecting.pop(request.req_id, None)
        bid_span = self._bid_spans.pop(request.req_id, None)
        if not self.alive or not self.is_coordinator:
            return
        self._finish_round(request, bids, bid_span)

    # ---------------------------------------------------- hierarchy sub-leader

    def _on_delegate(self, msg: DelegateRequest) -> None:
        if not self.alive or msg.request.req_id in self._cell_rounds:
            return
        round_ = _CellRound(msg)
        self._cell_rounds[msg.request.req_id] = round_
        self.emit(
            "sched.cell_poll",
            req_id=msg.request.req_id,
            cell=msg.cell,
            members=len(msg.members),
        )
        own = self._disclose_bid()
        if own is not None:
            round_.bids.append(own)
        probe = DiscloseProbe(msg.request.req_id, self.address)
        for member in msg.members:
            if member == self.address:
                continue
            round_.pending += 1
            self.send(member, probe, size=128)
        if round_.pending == 0:
            self._cell_finish(round_)
        else:
            self.set_timer(self.daemon_config.bid_timeout, f"cell:{msg.request.req_id}")

    def _on_probe_reply(self, msg: ProbeReply) -> None:
        round_ = self._cell_rounds.get(msg.req_id)
        if round_ is None:
            return
        if msg.bid is not None:
            round_.bids.append(msg.bid)
        round_.pending -= 1
        if round_.pending == 0:
            self.cancel_timer(f"cell:{msg.req_id}")
            self._cell_finish(round_)

    def _cell_finish(self, round_: _CellRound) -> None:
        msg = round_.delegate
        req_id = msg.request.req_id
        self._cell_rounds.pop(req_id, None)
        report = CellBids(req_id, msg.cell, tuple(round_.bids), polled=len(msg.members))
        if msg.root == self.address:
            self._on_cell_bids(report)
        else:
            self.send(msg.root, report, size=1024)

    # ------------------------------------------------------------ member side

    def on_cbcast(self, sender: Address, kind: str, payload: Any) -> None:
        """Queue replication: every daemon mirrors the leader's pending
        queue, so a new leader resumes queued work after a takeover
        ("fault-tolerance of the group leader ... through redundancy")."""
        hb = self.sim.hb
        if kind == "queue_add":
            request, first = payload
            self._first_enqueued.setdefault(request.req_id, first)
            if hb is not None:
                hb.write(f"queue:{self.machine.name}", "R001", "daemon.queue_add")
            self.pending_queue.push(request, first)
            if self.is_coordinator and not self._collecting and not self.has_timer("retry-queue"):
                self.set_timer(self.daemon_config.retry_interval, "retry-queue")
        elif kind == "queue_remove":
            if hb is not None:
                hb.write(f"queue:{self.machine.name}", "R001", "daemon.queue_remove")
            self.pending_queue.remove(payload)
            self._first_enqueued.pop(payload, None)
        elif kind == "queue_reprioritize":
            req_id, priority = payload
            if hb is not None:
                hb.write(f"queue:{self.machine.name}", "R001", "daemon.queue_reprioritize")
            if self.pending_queue.reprioritize(req_id, priority):
                if self.is_coordinator:
                    self.emit("sched.reprioritized", req_id=req_id, priority=priority)

    def _disclose_bid(self) -> MachineBid | None:
        """Answer one state disclosure (flat broadcast or hierarchy probe):
        a bid when "not already excessively loaded", else a decline."""
        tel = self._tel()
        if self.can_bid():
            self.bids_made += 1
            if tel is not None:
                tel.counter("sched_bids_total", "bids offered").inc()
            return self.make_bid()
        if tel is not None:
            tel.counter(
                "sched_declines_total", "disclosures declined (too loaded)"
            ).inc()
        self.emit("sched.decline", load=self.current_load())
        return None

    def on_group_request(self, requester: Address, body: Any, reply: Callable[[Any], None]) -> None:
        if isinstance(body, tuple) and body and body[0] == "disclose":
            bid = self._disclose_bid()
            if bid is not None:
                reply(bid)
            return

    # ---------------------------------------------------------------- timers

    def on_timer(self, key: str) -> None:
        if key == "retry-queue":
            self._retry_queued()
        elif key.startswith("hier:"):
            self._hier_timeout(key[len("hier:"):])
        elif key.startswith("cell:"):
            round_ = self._cell_rounds.get(key[len("cell:"):])
            if round_ is not None:
                self._cell_finish(round_)
        else:
            super().on_timer(key)

    def _retry_queued(self) -> None:
        if not self.is_coordinator or not self.pending_queue:
            return
        if self._collecting:
            # one bidding round at a time: queue order must not be bypassed
            # by overlapping disclosure rounds
            self.set_timer(self.daemon_config.retry_interval, "retry-queue")
            return
        hb = self.sim.hb
        if hb is not None:
            hb.write(f"queue:{self.machine.name}", "R001", "daemon.queue_retry")
        item = self.pending_queue.peek(self.now)
        if item is None or item.request.req_id in self._collecting:
            return
        item.attempts += 1
        tel = self._tel()
        if tel is not None:
            tel.counter("sched_retries_total", "queued-request retries").inc()
            tel.histogram(
                "sched_queue_wait_seconds", "wait before a queued retry"
            ).observe(self.now - item.enqueued_at)
        self.emit(
            "sched.retry",
            req_id=item.request.req_id,
            attempts=item.attempts,
            waited=self.now - item.enqueued_at,
            effective_priority=item.effective_priority(self.now, self.pending_queue.aging_rate),
            **trace_fields(item.request.trace),
        )
        self._start_bidding(item.request)
