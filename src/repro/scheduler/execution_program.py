"""The execution program (§5 ``execute()``).

Runs on the user's workstation. Walks the application's modules, sends one
:class:`ResourceRequest` per machine-class group, collects
allocation replies, maps bids to task instances with a placement policy,
ships :class:`ExecutionInfo` to the selected daemons, submits the placement
to the runtime manager, waits for application termination, and finally
sends :class:`TerminateNotice` to every involved daemon — the exact control
flow of the paper's C-style pseudocode:

    openExecutionScriptForReading(); while(!eof) { readLine;
    SendRequestToSpecifiedGroup(); ReceiveReply(); if (AllocError())
    Terminate(); } for each group SendExecutionInfoToGroup();
    StartExecution(); WaitForApplicationTermination();
    SendTerminateMessage();
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.machines.archclass import MachineClass
from repro.netsim.host import Address
from repro.netsim.process import SimProcess
from repro.runtime.manager import Placement
from repro.scheduler.directory import GroupDirectory
from repro.scheduler.messages import (
    AllocationError_,
    AllocationReply,
    ExecutionInfo,
    MachineBid,
    ModuleNeed,
    ResourceRequest,
    TerminateNotice,
)
from repro.scheduler.policies import PlacementPolicy, load_sorted_assignment
from repro.trace.context import TraceContext, trace_fields
from repro.util.errors import AllocationError, VCEError

if TYPE_CHECKING:  # pragma: no cover
    from repro.machines.database import MachineDatabase
    from repro.runtime.app import Application
    from repro.runtime.manager import RuntimeManager
    from repro.taskgraph import TaskGraph


class RunState(enum.Enum):
    ALLOCATING = "allocating"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class AppRun:
    """Outcome handle returned by :meth:`ExecutionProgram` use."""

    state: RunState = RunState.ALLOCATING
    app: "Application | None" = None
    error: str | None = None
    requested_at: float | None = None
    allocated_at: float | None = None
    completed_at: float | None = None
    placement: Placement | None = None

    @property
    def allocation_latency(self) -> float | None:
        if self.requested_at is None or self.allocated_at is None:
            return None
        return self.allocated_at - self.requested_at


class ExecutionProgram(SimProcess):
    """See module docstring.

    Args:
        name: process name on the user's workstation host.
        graph: the fully annotated task graph.
        class_map: task → machine class to request from (None = LOCAL:
            run on this workstation without bidding).
        runtime: the runtime manager that will dispatch instances.
        directory: group-leader lookup.
        database: machine capability lookup (feasibility filtering of bids).
        policy: bid→instance assignment policy (default: the paper's
            load-sorted rule).
        ranges: optional task → (min, max) instance ranges (the planned
            ``ASYNC 5-`` / ``SYNC 5,10`` vocabulary); absent tasks use the
            graph's fixed instance count.
        params: application parameters forwarded to task contexts.
        priority: request priority (aging starts from here, §4.3).
        queue_if_insufficient: ask leaders to queue unsatisfiable requests
            instead of failing the run.
        on_finished: callback ``(AppRun)`` at DONE or FAILED.
    """

    REQUEST_TIMEOUT = 5.0
    MAX_REQUEST_RETRIES = 5
    #: retry timeouts grow REQUEST_TIMEOUT * RETRY_BACKOFF**n (capped), with
    #: up to RETRY_JITTER of proportional seeded jitter so retransmission
    #: storms from many programs decorrelate
    RETRY_BACKOFF = 1.6
    MAX_RETRY_DELAY = 30.0
    RETRY_JITTER = 0.1

    def __init__(
        self,
        name: str,
        graph: "TaskGraph",
        class_map: dict[str, MachineClass | None],
        runtime: "RuntimeManager",
        directory: GroupDirectory,
        database: "MachineDatabase",
        policy: PlacementPolicy = load_sorted_assignment,
        ranges: dict[str, tuple[int, int]] | None = None,
        params: dict[str, Any] | None = None,
        priority: float = 0.0,
        queue_if_insufficient: bool = False,
        on_finished: Callable[[AppRun], None] | None = None,
    ) -> None:
        super().__init__(name)
        self.graph = graph
        self.class_map = dict(class_map)
        self.runtime = runtime
        self.directory = directory
        self.database = database
        self.policy = policy
        self.ranges = dict(ranges or {})
        self.params = dict(params or {})
        self.priority = priority
        self.queue_if_insufficient = queue_if_insufficient
        self.on_finished = on_finished
        self.run_handle = AppRun()
        self.app_id: str | None = None
        #: root span of this run's trace (minted in on_start)
        self.trace: TraceContext | None = None
        self._pending: dict[str, MachineClass] = {}  # req_id -> class
        self._replies: dict[MachineClass, tuple[MachineBid, ...]] = {}
        self._retries: dict[str, int] = {}
        self._req_spans: dict[str, TraceContext] = {}  # req_id -> alloc span
        self._request_cache: dict[str, ResourceRequest] = {}
        self._tasks_by_class: dict[MachineClass, list[str]] = {}
        # (bids identity, requirements signature) -> feasible machine list;
        # tasks with identical requirements share the returned list object,
        # letting placement policies cache derived sets by id()
        self._feas_cache: dict[tuple, list[str]] = {}

    # ---------------------------------------------------------------- start

    def on_start(self) -> None:
        self.app_id = self.sim.ids.next("app")
        self._jitter_rng = self.sim.rng.stream(f"exec.jitter.{self.name}")
        self.trace = TraceContext(self.sim.ids.next("trace"), self.sim.ids.next("span"))
        self.emit("exec.submit", app=self.app_id, **self.trace.fields())
        self.run_handle.requested_at = self.now
        known = {n.name for n in self.graph}
        missing = [t for t in self.class_map if t not in known]
        if missing:
            self._fail(f"class map names unknown tasks: {missing}")
            return
        by_class: dict[MachineClass, list[str]] = defaultdict(list)
        for node in self.graph:
            cls = self.class_map.get(node.name)
            if cls is not None:
                by_class[cls].append(node.name)
        self._tasks_by_class = dict(by_class)
        if not by_class:
            # purely local application
            self._allocate_and_go()
            return
        # batch fan-out: validate and construct every request before the
        # first send so a missing group fails the run without half the
        # leaders already bidding on a doomed application
        requests = []
        for cls, tasks in by_class.items():
            if not self.directory.has_group(cls):
                self._fail(f"no {cls} group is on line")
                return
            requests.append(self._build_request(cls, tasks))
        for request in requests:
            self._send_request(request)

    def _build_request(self, cls: MachineClass, tasks: list[str]) -> ResourceRequest:
        modules = []
        for task in tasks:
            node = self.graph.task(task)
            lo, hi = self.ranges.get(task, (node.instances, node.instances))
            modules.append(
                ModuleNeed(task, lo, hi, node.hardware_requirements(), self.priority)
            )
        req_id = self.sim.ids.next(f"rr.{self.name}")
        assert self.trace is not None
        req_span = self.trace.child(self.sim.ids.next("span"))
        self._req_spans[req_id] = req_span
        return ResourceRequest(
            req_id=req_id,
            app=self.app_id or "?",
            machine_class=cls,
            modules=tuple(modules),
            reply_to=self.address,
            priority=self.priority,
            queue_if_insufficient=self.queue_if_insufficient,
            trace=req_span,
        )

    def _send_request(self, request: ResourceRequest) -> None:
        cls = request.machine_class
        req_id = request.req_id
        self._pending[req_id] = cls
        self.emit("exec.request", app=self.app_id, cls=cls.value, req_id=req_id,
                  needed=request.total_min, **trace_fields(request.trace))
        self.send(self.directory.leader(cls), request, size=512)
        self.set_timer(self.REQUEST_TIMEOUT, f"reqto:{req_id}")
        self._request_cache[req_id] = request

    # -------------------------------------------------------------- replies

    def on_message(self, src: Address, payload: Any) -> None:
        if isinstance(payload, AllocationReply):
            cls = self._pending.pop(payload.req_id, None)
            if cls is None:
                return
            self.cancel_timer(f"reqto:{payload.req_id}")
            self._replies[cls] = payload.bids
            self.emit("exec.reply", app=self.app_id, cls=cls.value, bids=len(payload.bids),
                      req_id=payload.req_id,
                      **trace_fields(self._req_spans.get(payload.req_id)))
            if not self._pending and self.run_handle.state is RunState.ALLOCATING:
                self._allocate_and_go()
        elif isinstance(payload, AllocationError_):
            cls = self._pending.get(payload.req_id)
            if cls is None:
                return
            if payload.queued:
                # the leader holds the request in its aging queue; a later
                # AllocationReply will arrive when capacity frees up
                self.cancel_timer(f"reqto:{payload.req_id}")
                self.emit("exec.queued", app=self.app_id, cls=cls.value,
                          **trace_fields(self._req_spans.get(payload.req_id)))
                return
            self._pending.pop(payload.req_id, None)
            self._fail(
                f"allocation error from {cls} group: requested "
                f"{payload.requested}, available {payload.available}"
            )

    def on_timer(self, key: str) -> None:
        if not key.startswith("reqto:"):
            return
        req_id = key[6:]
        cls = self._pending.get(req_id)
        if cls is None:
            return
        retries = self._retries.get(req_id, 0) + 1
        self._retries[req_id] = retries
        if retries > self.MAX_REQUEST_RETRIES:
            self._fail(f"group {cls} never replied (leader unreachable?)")
            return
        # leader may have failed: re-resolve and retransmit with
        # exponentially backed-off, jittered timeout
        request = self._request_cache.get(req_id)
        if request is None or not self.directory.has_group(cls):
            self._fail(f"no {cls} group is on line")
            return
        delay = min(
            self.MAX_RETRY_DELAY, self.REQUEST_TIMEOUT * self.RETRY_BACKOFF**retries
        )
        delay *= 1.0 + self.RETRY_JITTER * self._jitter_rng.random()
        self.emit("exec.retry_request", app=self.app_id, cls=cls.value, attempt=retries,
                  timeout=round(delay, 6),
                  **trace_fields(self._req_spans.get(req_id)))
        self.send(self.directory.leader(cls), request, size=512)
        self.set_timer(delay, key)

    # ------------------------------------------------------------ placement

    def _allocate_and_go(self) -> None:
        try:
            placement, chosen_counts, daemons_by_machine = self._build_placement()
        except AllocationError as err:
            self._fail(str(err))
            return
        self.run_handle.allocated_at = self.now
        self.run_handle.placement = placement
        # instance-count ranges resolved: fix the graph before submit
        for task, count in chosen_counts.items():
            self.graph.task(task).instances = count
        # SendExecutionInfoToGroup(): tell each selected daemon what's coming
        per_daemon: dict[Address, list[tuple[str, int]]] = defaultdict(list)
        for (task, rank), machine in placement.assignments.items():
            daemon = daemons_by_machine.get(machine)
            if daemon is not None:
                per_daemon[daemon].append((task, rank))
        for daemon, tasks in per_daemon.items():
            self.send(daemon, ExecutionInfo(self.app_id or "?", tuple(tasks)), size=512)
        self._involved_daemons = list(per_daemon)
        # StartExecution()
        self.run_handle.state = RunState.RUNNING
        try:
            app = self.runtime.submit(
                self.graph, placement, self.params, app_id=self.app_id,
                trace=self.trace,
            )
        except VCEError as err:
            # e.g. dispatch found no compiler for a chosen machine: surface
            # as a failed run instead of crashing the event loop
            self._fail(f"dispatch failed: {err}")
            return
        self.run_handle.app = app
        self.emit("exec.start", app=app.id, instances=len(placement.assignments),
                  **trace_fields(self.trace))
        # WaitForApplicationTermination()
        app.on_complete(self._app_finished)

    def _build_placement(self) -> tuple[Placement, dict[str, int], dict[str, Address]]:
        """Map bids to instances via the policy; raises AllocationError if
        any required instance cannot be placed."""
        daemons_by_machine: dict[str, Address] = {}
        placement = Placement()
        chosen_counts: dict[str, int] = {}
        # local tasks run on this workstation
        for node in self.graph:
            if self.class_map.get(node.name) is None:
                chosen_counts[node.name] = node.instances
                for rank in range(node.instances):
                    placement.assign(node.name, rank, self.host.name)
        # remote tasks per class
        for cls, bids in self._replies.items():
            tasks = self._tasks_by_class.get(cls, [])
            for bid in bids:
                daemons_by_machine[bid.machine] = bid.daemon
            needs = []
            for task in tasks:
                node = self.graph.task(task)
                lo, hi = self.ranges.get(task, (node.instances, node.instances))
                candidates = self._feasible_machines(task, bids)
                count = min(hi, max(lo, len(candidates)))
                count = min(count, len(candidates)) if candidates else 0
                if count < lo:
                    raise AllocationError(
                        f"task {task!r} needs {lo} machines in {cls}, "
                        f"only {len(candidates)} feasible bids",
                        requested=lo,
                        available=len(candidates),
                    )
                chosen_counts[task] = max(count, 1) if lo == 0 else count
                for rank in range(count):
                    needs.append((task, rank, candidates))
            assignment = self.policy(needs, list(bids))
            unplaced = [n for n in needs if (n[0], n[1]) not in assignment]
            if unplaced:
                raise AllocationError(
                    f"policy left {len(unplaced)} instances unplaced in {cls}: "
                    f"{[(t, r) for t, r, _ in unplaced]}",
                    requested=len(needs),
                    available=len(needs) - len(unplaced),
                )
            for (task, rank), machine in assignment.items():
                placement.assign(task, rank, machine)
        return placement, chosen_counts, daemons_by_machine

    def _feasible_machines(self, task: str, bids: tuple[MachineBid, ...]) -> list[str]:
        node = self.graph.task(task)
        reqs = {k: v for k, v in node.hardware_requirements().items() if k != "files"}
        # tasks sharing a requirements signature get the *same* list object,
        # so feasibility is checked once per distinct signature rather than
        # once per task, and policies can key caches on id(candidates)
        key = (id(bids), tuple(sorted((k, repr(v)) for k, v in reqs.items())))
        cached = self._feas_cache.get(key)
        if cached is not None:
            return cached
        database = self.database
        out = [b.machine for b in bids if database.get(b.machine).satisfies(reqs)]
        self._feas_cache[key] = out
        return out

    # ------------------------------------------------------------ completion

    def _app_finished(self, app: "Application") -> None:
        # SendTerminateMessage()
        for daemon in getattr(self, "_involved_daemons", []):
            self.send(daemon, TerminateNotice(app.id), size=128)
        self.run_handle.completed_at = self.now
        from repro.runtime.app import AppStatus

        self.run_handle.state = (
            RunState.DONE if app.status is AppStatus.DONE else RunState.FAILED
        )
        if self.run_handle.state is RunState.FAILED:
            self.run_handle.error = "application failed"
        self.emit("exec.finished", app=app.id, state=self.run_handle.state.value,
                  **trace_fields(self.trace))
        if self.on_finished is not None:
            self.on_finished(self.run_handle)

    def _fail(self, reason: str) -> None:
        if self.run_handle.state in (RunState.DONE, RunState.FAILED):
            return
        self.run_handle.state = RunState.FAILED
        self.run_handle.error = reason
        self.emit("exec.failed", app=self.app_id, reason=reason,
                  **trace_fields(self.trace))
        if self.on_finished is not None:
            self.on_finished(self.run_handle)
