"""Wire messages between execution programs and scheduler daemons."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.machines.archclass import MachineClass
from repro.netsim.host import Address
from repro.trace.context import TraceContext


@dataclass(frozen=True, slots=True)
class ModuleNeed:
    """One module's resource needs within a request (one script directive).

    ``min_instances``/``max_instances`` encode the paper's planned
    vocabulary: ``ASYNC 2`` → (2, 2); ``ASYNC 5-`` → (1, 5);
    ``SYNC 5,10`` → (5, 10).
    """

    task: str
    min_instances: int = 1
    max_instances: int = 1
    requirements: dict[str, Any] = field(default_factory=dict)
    priority: float = 0.0


@dataclass(frozen=True, slots=True)
class ResourceRequest:
    """Execution program → group leader: "a list of the resources required
    from each group for a given VCE application"."""

    req_id: str
    app: str
    machine_class: MachineClass
    modules: tuple[ModuleNeed, ...]
    reply_to: Address
    priority: float = 0.0
    queue_if_insufficient: bool = False
    #: causal context of the requesting execution program's allocation span;
    #: the leader parents its bidding-round span under it (None when the
    #: request was built outside a traced flow).
    trace: TraceContext | None = None

    @property
    def total_min(self) -> int:
        return sum(m.min_instances for m in self.modules)


@dataclass(frozen=True, slots=True)
class MachineBid:
    """A daemon's bid: "Each bid includes the current load of the bidding
    machine"."""

    machine: str
    daemon: Address
    load: float
    speed: float
    arch_class: MachineClass
    free_memory_mb: int = 0
    site: str = ""


@dataclass(frozen=True, slots=True)
class AllocationReply:
    """Leader → execution program: the sorted bids of the least-loaded
    processors available for remote execution."""

    req_id: str
    bids: tuple[MachineBid, ...]


@dataclass(frozen=True, slots=True)
class AllocationError_:
    """Leader → execution program: insufficient resources in this group.

    (Trailing underscore avoids clashing with the exception
    :class:`repro.util.errors.AllocationError`.)
    """

    req_id: str
    requested: int
    available: int
    queued: bool = False


@dataclass(frozen=True, slots=True)
class Allocation:
    """The execution program's final (task, rank) → machine assignment for
    one group, derived from the bids by a placement policy."""

    app: str
    assignments: tuple[tuple[str, int, str], ...]  # (task, rank, machine)


@dataclass(frozen=True, slots=True)
class ExecutionInfo:
    """Execution program → selected daemon: "the programs and data files
    that make up the application" headed its way."""

    app: str
    tasks: tuple[tuple[str, int], ...]  # (task, rank) pairs assigned here


@dataclass(frozen=True, slots=True)
class TerminateNotice:
    """Execution program → daemons: the application is finished."""

    app: str


@dataclass(frozen=True, slots=True)
class DelegateRequest:
    """Root leader → sub-leader: poll your cell for bids on this request
    (hierarchical bidding, ``DaemonConfig.leader_fanout > 1``).

    The root freezes the cell's member list at delegation time so a view
    change mid-round cannot split the two ends' idea of the cell.
    """

    request: ResourceRequest
    cell: int
    members: tuple[Address, ...]
    root: Address


@dataclass(frozen=True, slots=True)
class DiscloseProbe:
    """Sub-leader → cell member: the direct (point-to-point) equivalent of
    the flat leader's state-disclosure broadcast — the hierarchy exists so
    this fan-out covers one cell, not the whole group."""

    req_id: str
    reply_to: Address


@dataclass(frozen=True, slots=True)
class ProbeReply:
    """Cell member → sub-leader: a bid, or a decline (``bid=None``)."""

    req_id: str
    bid: MachineBid | None


@dataclass(frozen=True, slots=True)
class CellBids:
    """Sub-leader → root leader: one cell's collected bids plus the
    aggregate the root caches for escalation ordering."""

    req_id: str
    cell: int
    bids: tuple[MachineBid, ...]
    polled: int

    @property
    def mean_load(self) -> float:
        """Average bid load — the cached per-cell aggregate the root uses
        to order escalation; a cell with no bids reports saturated."""
        if not self.bids:
            return 1e9
        return sum(b.load for b in self.bids) / len(self.bids)


@dataclass(frozen=True, slots=True)
class SetPriority:
    """Authorized user → group leader: change a queued request's base
    priority ("authorized users will be able to modify the priorities of
    particular applications", §4.3). Applied (and replicated) if the
    request is still queued."""

    req_id: str
    priority: float
