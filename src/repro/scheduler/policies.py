"""Placement policies: mapping allocated bids to task instances.

The group leader returns load-sorted bids; the execution program must then
decide which machine runs which task instance. Policies provided:

- :func:`load_sorted_assignment` — the paper's default: hand the
  least-loaded machines to instances in dispatch-priority order (user
  runtime-weight hints first, §3.1.1).
- :func:`greedy_assignment` — each task takes its individually best
  machine in arbitrary task order (the strawman of the §4.3 example).
- :func:`utilization_first_assignment` — the §4.3 machine-A rule: assign
  the most *constrained* tasks first and never hand a flexible task the
  unique feasible machine of a still-unassigned constrained task, "even if
  there are no other idle [machines] available — the second job should be
  made to wait".
- :func:`random_assignment`, :func:`round_robin_assignment` — baselines
  for benchmark E2.

All policies take ``needs``: a list of ``(task, rank, candidates)`` where
*candidates* is the subset of offered machine names this instance may use
(hardware feasibility), ordered by preference; and ``bids``: load-sorted
:class:`~repro.scheduler.messages.MachineBid`. They return
``{(task, rank): machine_name}`` and may leave instances unassigned (the
caller queues or fails them).
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from repro.scheduler.messages import MachineBid

Need = tuple[str, int, Sequence[str]]
Assignment = dict[tuple[str, int], str]

#: A placement policy callable.
PlacementPolicy = Callable[[list[Need], list[MachineBid]], Assignment]


def _bid_order(bids: list[MachineBid]) -> list[str]:
    return [b.machine for b in sorted(bids, key=lambda b: (b.load, -b.speed, b.machine))]


def load_sorted_assignment(needs: list[Need], bids: list[MachineBid]) -> Assignment:
    """Least-loaded machines to instances, one instance per machine.

    Equivalent to scanning the load-sorted machine list from the front for
    every instance, but instances sharing a candidates *object* (every rank
    of a task, and — via the execution program's feasibility cache — every
    task with the same hardware signature) resume the scan from a per-set
    cursor instead of rescanning: machines behind the cursor are already
    taken or infeasible for that set, permanently.
    """
    order = _bid_order(bids)
    n = len(order)
    taken: set[str] = set()
    allowed_sets: dict[int, set[str]] = {}
    cursors: dict[int, int] = {}
    out: Assignment = {}
    for task, rank, candidates in needs:
        key = id(candidates)
        allowed = allowed_sets.get(key)
        if allowed is None:
            allowed = allowed_sets[key] = set(candidates)
        i = cursors.get(key, 0)
        while i < n:
            machine = order[i]
            i += 1
            if machine in allowed and machine not in taken:
                out[(task, rank)] = machine
                taken.add(machine)
                break
        cursors[key] = i
    return out


def greedy_assignment(needs: list[Need], bids: list[MachineBid]) -> Assignment:
    """Each instance grabs its most-preferred still-free machine, in the
    order instances appear — no look-ahead, so a flexible early task can
    steal a constrained later task's only machine."""
    free = {b.machine for b in bids}
    out: Assignment = {}
    for task, rank, candidates in needs:
        for machine in candidates:
            if machine in free:
                out[(task, rank)] = machine
                free.remove(machine)
                break
    return out


def utilization_first_assignment(needs: list[Need], bids: list[MachineBid]) -> Assignment:
    """The §4.3 rule: most-constrained instances first.

    Instances are processed in ascending candidate-set size (fewest options
    first); each takes its best free candidate. A flexible instance
    therefore can never occupy the sole feasible machine of a more
    constrained one, maximizing the number of simultaneously running tasks
    (and thus utilization/throughput) at the cost of per-job optimality.
    """
    free = {b.machine for b in bids}
    order = sorted(
        range(len(needs)), key=lambda i: (len(needs[i][2]), needs[i][0], needs[i][1])
    )
    out: Assignment = {}
    for i in order:
        task, rank, candidates = needs[i]
        for machine in candidates:
            if machine in free:
                out[(task, rank)] = machine
                free.remove(machine)
                break
    return out


def random_assignment(
    needs: list[Need], bids: list[MachineBid], rng: random.Random | None = None
) -> Assignment:
    """Uniformly random feasible machine per instance (baseline)."""
    rng = rng or random.Random(0)
    free = {b.machine for b in bids}
    out: Assignment = {}
    for task, rank, candidates in needs:
        options = [m for m in candidates if m in free]
        if options:
            pick = rng.choice(options)
            out[(task, rank)] = pick
            free.remove(pick)
    return out


def site_packed_assignment(needs: list[Need], bids: list[MachineBid]) -> Assignment:
    """Keep each task's instances within one site where possible.

    Communicating instances (the synchronous/loosely-synchronous classes)
    pay WAN latency for every message when scattered across sites; this
    policy groups a task's instances on the single site offering the most
    feasible machines (ties: lowest aggregate load), falling back to
    load-sorted spill-over for the remainder.
    """
    from collections import defaultdict

    by_task: dict[str, list[Need]] = defaultdict(list)
    for need in needs:
        by_task[need[0]].append(need)
    free = {b.machine for b in bids}
    bid_by_machine = {b.machine: b for b in bids}
    out: Assignment = {}
    for task, task_needs in by_task.items():
        # rank sites by (feasible free machines desc, aggregate load asc)
        site_pool: dict[str, list[str]] = defaultdict(list)
        allowed = set(task_needs[0][2])
        # sorted: set order is hash-dependent and would leak into the pool's
        # load-tie ordering, making placement vary across processes
        for machine in sorted(allowed):
            bid = bid_by_machine.get(machine)
            if bid is not None and machine in free:
                site_pool[bid.site].append(machine)
        ordered_sites = sorted(
            site_pool,
            key=lambda s: (
                -len(site_pool[s]),
                sum(bid_by_machine[m].load for m in site_pool[s]),
                s,
            ),
        )
        pool = [
            m
            for site in ordered_sites
            for m in sorted(site_pool[site], key=lambda m: bid_by_machine[m].load)
        ]
        for (task_name, rank, candidates), machine in zip(task_needs, pool):
            out[(task_name, rank)] = machine
            free.discard(machine)
    return out


def round_robin_assignment(needs: list[Need], bids: list[MachineBid]) -> Assignment:
    """Cycle through machines in name order, skipping infeasible ones."""
    machines = sorted(b.machine for b in bids)
    free = set(machines)
    out: Assignment = {}
    cursor = 0
    for task, rank, candidates in needs:
        allowed = set(candidates)
        for step in range(len(machines)):
            machine = machines[(cursor + step) % len(machines)]
            if machine in free and machine in allowed:
                out[(task, rank)] = machine
                free.remove(machine)
                cursor = (cursor + step + 1) % len(machines)
                break
    return out
