"""Group-leader directory.

The execution program must know where to send each group's request. In the
Isis prototype this is the toolkit's group-name lookup; here a directory
object records, per machine class, the current leader and membership — the
daemons' view-change callbacks keep it fresh.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machines.archclass import MachineClass
from repro.netsim.host import Address
from repro.util.errors import AllocationError


@dataclass
class _GroupEntry:
    leader: Address | None = None
    members: list[Address] = field(default_factory=list)
    view_id: int = 0


class GroupDirectory:
    """Class → (leader, members) lookup."""

    def __init__(self) -> None:
        self._groups: dict[MachineClass, _GroupEntry] = {}

    def update(
        self, arch_class: MachineClass, leader: Address, members: list[Address], view_id: int
    ) -> None:
        entry = self._groups.setdefault(arch_class, _GroupEntry())
        if view_id >= entry.view_id:
            entry.leader = leader
            entry.members = list(members)
            entry.view_id = view_id

    def leader(self, arch_class: MachineClass) -> Address:
        entry = self._groups.get(arch_class)
        if entry is None or entry.leader is None:
            raise AllocationError(f"no {arch_class} group is on line")
        return entry.leader

    def members(self, arch_class: MachineClass) -> list[Address]:
        entry = self._groups.get(arch_class)
        return list(entry.members) if entry else []

    def group_size(self, arch_class: MachineClass) -> int:
        return len(self.members(arch_class))

    def classes(self) -> list[MachineClass]:
        return [c for c, e in self._groups.items() if e.members]

    def has_group(self, arch_class: MachineClass) -> bool:
        entry = self._groups.get(arch_class)
        return entry is not None and entry.leader is not None and bool(entry.members)
