"""Hierarchical group leaders: cells, sub-leaders, and request routing.

The paper's one-leader-per-architecture design makes every bidding round a
full-group broadcast — O(n) messages per request through the Isis cbcast
layer, each with per-member acks.  Past a few dozen daemons the leader
becomes the hot spot (ROADMAP item 2).  With
``DaemonConfig.leader_fanout > 1`` the group leader instead partitions its
view into *cells* on a consistent-hash ring, delegates each request to the
sub-leader of the cell the request hashes to, and escalates to further
cells — in cached-aggregate-load order — only while the collected bids are
still short of the request's minimum.  Fan-out per round drops from the
whole group to ``cells_polled × cell_size``; for a fanout of ~log n the
common (no-escalation) round is logarithmic in daemon count.

Everything here is pure data/derivation so the protocol in
:class:`~repro.scheduler.daemon.SchedulerDaemon` stays testable without a
simulator:

- :func:`build_cells` — view members → :class:`CellMap` (deterministic:
  members are hashed by host name onto a ring of cell slots, view order
  breaks nothing because assignment depends only on names).
- :class:`CellMap` — frozen per view; routes ``req_id`` to a primary cell
  and yields the escalation order given the root's cached cell loads.

A fanout of 1 never reaches this module: the daemon short-circuits to the
historical flat broadcast, which keeps replay digests byte-identical with
pre-hierarchy builds (the degenerate-case conformance tests pin this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.util.hashing import ConsistentHashRing

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.host import Address


@dataclass(frozen=True)
class CellMap:
    """One view's partition into sub-leader cells.

    Attributes:
        cells: cell id → members (view order preserved inside each cell;
            empty cells are dropped, so every listed cell has a sub-leader).
        view_id: the view this partition was derived from.
    """

    cells: tuple[tuple["Address", ...], ...]
    cell_ids: tuple[int, ...]
    view_id: int
    _router: ConsistentHashRing

    def members_of(self, cell: int) -> tuple["Address", ...]:
        return self.cells[self.cell_ids.index(cell)]

    def sub_leader(self, cell: int) -> "Address":
        """First view-order member — the cell's oldest, mirroring the Isis
        convention that the oldest group member coordinates."""
        return self.members_of(cell)[0]

    def route(self, req_id: str) -> int:
        """The primary cell for a request (consistent hash of its id)."""
        return int(self._router.lookup(req_id).removeprefix("cell-"))

    def escalation_order(self, req_id: str, cell_loads: Mapping[int, float]) -> list[int]:
        """Cells in polling order for one request: the primary first, then
        the rest by cached aggregate load (unknown cells poll before known
        ones — optimism about unexplored capacity), ties by cell id."""
        primary = self.route(req_id)
        rest = [c for c in self.cell_ids if c != primary]
        rest.sort(key=lambda c: (cell_loads.get(c, -1.0), c))
        return [primary, *rest]


def build_cells(
    members: Sequence["Address"], fanout: int, view_id: int = -1
) -> CellMap:
    """Partition *members* (view order) into at most *fanout* cells.

    Members land on cells by consistent hash of their host name, so a
    join/leave only moves that one member; requests later route over the
    ring of *occupied* cells only, so thin views degrade gracefully
    (ultimately to a single cell, behaviorally the flat protocol at
    point-to-point cost).
    """
    if fanout < 1:
        raise ValueError(f"leader_fanout must be >= 1, got {fanout}")
    if not members:
        raise ValueError("cannot build cells from an empty view")
    slots = ConsistentHashRing([f"cell-{i}" for i in range(fanout)])
    grouped: dict[int, list[Address]] = {}
    for member in members:
        cell = int(slots.lookup(member.host).removeprefix("cell-"))
        grouped.setdefault(cell, []).append(member)
    cell_ids = tuple(sorted(grouped))
    cells = tuple(tuple(grouped[c]) for c in cell_ids)
    router = ConsistentHashRing([f"cell-{c}" for c in cell_ids])
    return CellMap(cells=cells, cell_ids=cell_ids, view_id=view_id, _router=router)
