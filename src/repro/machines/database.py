"""The machine database.

"Through the use of a simple database, maintained by VCE software, the
compilation manager determines which are the best machines on which to run
each task." (§3.1.2)

The database indexes :class:`~repro.machines.machine.Machine` records by
name and by class, and answers the capability queries the compilation
manager and the execution program need.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterator

from repro.machines.archclass import MachineClass
from repro.machines.machine import Machine
from repro.util.errors import ConfigurationError


class MachineDatabase:
    """Registry of the machines participating in a VCE."""

    def __init__(self) -> None:
        self._machines: dict[str, Machine] = {}
        self._by_class: dict[MachineClass, list[Machine]] = defaultdict(list)

    def register(self, machine: Machine) -> Machine:
        if machine.name in self._machines:
            raise ConfigurationError(f"machine {machine.name!r} already registered")
        self._machines[machine.name] = machine
        self._by_class[machine.arch_class].append(machine)
        return machine

    def unregister(self, name: str) -> None:
        machine = self._machines.pop(name, None)
        if machine is not None:
            self._by_class[machine.arch_class].remove(machine)

    def __len__(self) -> int:
        return len(self._machines)

    def __contains__(self, name: str) -> bool:
        return name in self._machines

    def __iter__(self) -> Iterator[Machine]:
        return iter(self._machines.values())

    def get(self, name: str) -> Machine:
        try:
            return self._machines[name]
        except KeyError:
            raise ConfigurationError(f"unknown machine {name!r}") from None

    def machines_in_class(self, arch_class: MachineClass) -> list[Machine]:
        return list(self._by_class.get(arch_class, []))

    def classes_present(self) -> set[MachineClass]:
        return {c for c, ms in self._by_class.items() if ms}

    def class_counts(self) -> dict[MachineClass, int]:
        return {c: len(ms) for c, ms in self._by_class.items() if ms}

    def find(self, requirements: dict[str, Any]) -> list[Machine]:
        """All machines satisfying a task's hardware requirements."""
        return [m for m in self._machines.values() if m.satisfies(requirements)]

    def feasible_classes(self, requirements: dict[str, Any]) -> set[MachineClass]:
        """Classes containing at least one machine satisfying *requirements*
        — the candidate compilation targets for a task."""
        return {m.arch_class for m in self.find(requirements)}
