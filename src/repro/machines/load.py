"""Background (locally-initiated) load models.

The paper's scheduling and migration sections revolve around machines whose
*local* load varies over time: bids carry "the current load of the bidding
machine", the Stealth-style policies suspend remote work "when resource
requirements of locally initiated processes increase", and redundant
execution kills copies on machines that "get busy with other work".

A :class:`LoadModel` answers ``load(t)`` — the fraction of the machine's CPU
consumed by local work at simulation time ``t``, in ``[0, 1]``. The VCE-run
tasks then effectively compute at ``speed * (1 - load(t))``.
"""

from __future__ import annotations

import bisect
from typing import Protocol, Sequence

from repro.util.errors import ConfigurationError
from repro.util.rng import RngStreams


class LoadModel(Protocol):
    """Anything that can report instantaneous local load in [0, 1]."""

    def load(self, t: float) -> float:  # pragma: no cover - protocol
        ...


def _check_fraction(value: float, what: str) -> float:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{what} must be in [0, 1], got {value}")
    return float(value)


class ConstantLoad:
    """A machine whose local load never changes (the default: idle)."""

    def __init__(self, level: float = 0.0) -> None:
        self.level = _check_fraction(level, "load level")

    def load(self, t: float) -> float:
        return self.level

    def __repr__(self) -> str:  # pragma: no cover
        return f"ConstantLoad({self.level})"


class TraceLoad:
    """Piecewise-constant load from an explicit ``(time, level)`` trace.

    The level at time *t* is the one set by the last trace point at or
    before *t*; before the first point the load is ``initial``.
    """

    def __init__(self, points: Sequence[tuple[float, float]], initial: float = 0.0) -> None:
        self.initial = _check_fraction(initial, "initial load")
        pts = sorted((float(t), _check_fraction(l, "trace load")) for t, l in points)
        self._times = [t for t, _ in pts]
        self._levels = [l for _, l in pts]

    def load(self, t: float) -> float:
        i = bisect.bisect_right(self._times, t)
        return self.initial if i == 0 else self._levels[i - 1]


class StochasticLoad:
    """A two-state (idle/busy) alternating-renewal load process.

    Residence times are exponential with the given means; the sample path is
    generated lazily but deterministically from a named RNG substream, so two
    policies compared under one seed see identical background load — the
    common-random-numbers discipline.

    This stands in for the "locally initiated processes" of Krueger/Clark/Ju:
    a workstation owner who comes and goes.
    """

    def __init__(
        self,
        rng_streams: RngStreams,
        name: str,
        mean_idle: float = 60.0,
        mean_busy: float = 30.0,
        busy_level: float = 0.9,
        start_busy: bool = False,
    ) -> None:
        if mean_idle <= 0 or mean_busy <= 0:
            raise ConfigurationError("mean residence times must be positive")
        self.busy_level = _check_fraction(busy_level, "busy level")
        self.mean_idle = mean_idle
        self.mean_busy = mean_busy
        self._rng = rng_streams.stream(f"load.{name}")
        # _switch_times[i] is the time of the i-th state flip; state before
        # _switch_times[0] is the starting state.
        self._start_busy = start_busy
        self._switch_times: list[float] = []

    def _extend_to(self, t: float) -> None:
        horizon = self._switch_times[-1] if self._switch_times else 0.0
        state_busy = self._state_at_index(len(self._switch_times))
        while horizon <= t:
            mean = self.mean_busy if state_busy else self.mean_idle
            horizon += self._rng.expovariate(1.0 / mean)
            self._switch_times.append(horizon)
            state_busy = not state_busy

    def _state_at_index(self, i: int) -> bool:
        """State in force after the i-th flip (i=0 → starting state)."""
        return self._start_busy ^ (i % 2 == 1)

    def load(self, t: float) -> float:
        self._extend_to(t)
        i = bisect.bisect_right(self._switch_times, t)
        return self.busy_level if self._state_at_index(i) else 0.0

    def next_change_after(self, t: float) -> float:
        """Time of the next state flip strictly after *t* (used by load
        monitors that want to poll efficiently)."""
        self._extend_to(t)
        i = bisect.bisect_right(self._switch_times, t)
        if i >= len(self._switch_times):
            self._extend_to(self._switch_times[-1] + 1.0 if self._switch_times else t + 1.0)
            i = bisect.bisect_right(self._switch_times, t)
        return self._switch_times[i]
