"""Machine modelling: architecture classes, machine specs, background load.

The VCE divides all participating machines into *classes* that are the
low-level counterparts of the problem-architecture classes used by the SDM
design stage ("a possible machine class might be SIMD which would contain
machines like the CM5 and the MasPar MP-1"). This package provides:

- :class:`MachineClass` — SIMD / MIMD / VECTOR / WORKSTATION.
- :class:`Machine` — one machine's capabilities: class, speed, memory,
  object-code format (used by the homogeneity check of address-space-dump
  migration), and a background-load model.
- :class:`MachineDatabase` — "the simple database, maintained by VCE
  software" that the compilation manager queries to pick candidate machines.
- load models — constant, trace-driven, and stochastic busy/idle processes
  that stand in for the locally-initiated work the paper's placement and
  load-balancing sections reason about.
"""

from repro.machines.archclass import MachineClass
from repro.machines.load import (
    ConstantLoad,
    LoadModel,
    StochasticLoad,
    TraceLoad,
)
from repro.machines.machine import Machine
from repro.machines.database import MachineDatabase

__all__ = [
    "MachineClass",
    "Machine",
    "MachineDatabase",
    "LoadModel",
    "ConstantLoad",
    "TraceLoad",
    "StochasticLoad",
]
