"""Machine architecture classes.

The paper's examples name SIMD (CM-5*, MasPar MP-1), MIMD, vector machines,
and Unix workstations. Group formation, the bidding protocol, compilation
targets, and the script language's directive keywords all key off these
classes.

(*The CM-5 is MIMD hardware; we keep the paper's own example placement.)
"""

from __future__ import annotations

import enum


class MachineClass(enum.Enum):
    """Low-level machine architecture classes.

    These are the "low-level counterparts of the problem architecture
    classes used by the design stage" (paper §4.1).
    """

    SIMD = "SIMD"
    MIMD = "MIMD"
    VECTOR = "VECTOR"
    WORKSTATION = "WORKSTATION"

    @classmethod
    def parse(cls, text: str) -> "MachineClass":
        """Case-insensitive lookup used by the script language."""
        try:
            return cls[text.strip().upper()]
        except KeyError:
            valid = ", ".join(m.name for m in cls)
            raise ValueError(f"unknown machine class {text!r}; expected one of {valid}") from None

    def __str__(self) -> str:
        return self.value
