"""The :class:`Machine` description record.

A Machine is the *capability* view of a host: what the compilation manager's
database stores and what placement decisions consult. The simulation-level
behaviour (timers, message delivery, crash state) lives on the
:class:`~repro.netsim.host.Host` the machine is attached to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.machines.archclass import MachineClass
from repro.machines.load import ConstantLoad, LoadModel
from repro.util.errors import ConfigurationError


@dataclass
class Machine:
    """Static description of one VCE machine.

    Attributes:
        name: unique machine name (matches its Host name).
        arch_class: machine class used for group formation and compilation.
        speed: work units per second when fully idle. A 1994 workstation is
            speed 1.0; a parallel machine is larger.
        memory_mb: installed memory; tasks declaring more are not placeable.
        object_code_format: binary-compatibility tag; address-space-dump
            migration requires equal formats ("requires homogeneity", §4.4).
        os: operating-system family tag (informational; tasks may require it).
        background_load: the locally-initiated-work model.
        files: names of data files present on this machine (file requirements
            of §4.3; anticipatory file replication appends here).
        attributes: free-form extra capabilities (e.g. ``{"graphics": True}``)
            matched against task requirements.
    """

    name: str
    arch_class: MachineClass
    speed: float = 1.0
    memory_mb: int = 64
    object_code_format: str = ""
    os: str = "unix"
    background_load: LoadModel = field(default_factory=ConstantLoad)
    files: set[str] = field(default_factory=set)
    attributes: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ConfigurationError(f"machine {self.name!r}: speed must be positive")
        if self.memory_mb <= 0:
            raise ConfigurationError(f"machine {self.name!r}: memory must be positive")
        if not self.object_code_format:
            # Default: binaries are compatible exactly within an architecture
            # class, the paper's "object-code compatible" group property.
            self.object_code_format = f"{self.arch_class.value.lower()}-elf"

    # -- capability checks ---------------------------------------------------

    def satisfies(self, requirements: dict[str, Any]) -> bool:
        """Check task hardware requirements against this machine.

        Recognized requirement keys: ``arch_class`` (MachineClass or name),
        ``min_memory_mb``, ``os``, ``files`` (iterable of file names), and any
        other key, which must equal the machine attribute of the same name.
        """
        for key, want in requirements.items():
            if key == "arch_class":
                want_class = want if isinstance(want, MachineClass) else MachineClass.parse(str(want))
                if self.arch_class is not want_class:
                    return False
            elif key == "min_memory_mb":
                if self.memory_mb < want:
                    return False
            elif key == "os":
                if self.os != want:
                    return False
            elif key == "files":
                if not set(want) <= self.files:
                    return False
            elif self.attributes.get(key) != want:
                return False
        return True

    def binary_compatible_with(self, other: "Machine") -> bool:
        """True when an address-space image moved between the two machines
        would run (the homogeneity requirement of dump migration)."""
        return self.object_code_format == other.object_code_format

    def load_at(self, t: float) -> float:
        return self.background_load.load(t)

    def effective_speed(self, t: float) -> float:
        """Compute rate left over for VCE tasks at time *t*."""
        return self.speed * max(0.0, 1.0 - self.load_at(t))
