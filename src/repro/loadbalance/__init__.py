"""Load balancing and remote-execution policies (§4.3–4.4).

The paper contrasts two reactions when "resource requirements of locally
initiated processes increase" on a machine hosting remote VCE work:

- **suspend** (Clark's DAWGS, Ju, Krueger's Stealth): pause the remote
  tasks and resume them "when activity of locally initiated tasks
  diminishes". Cheap — no migration mechanism needed — but "if a virtual
  machine task is suspended ... initiation of other tasks dependent on the
  output of the suspended task could be delayed. This ripple effect could
  adversely affect system throughput."
- **migrate**: move the task to a less-loaded machine via one of the §4.4
  schemes, keeping the dependency graph flowing at the price of migration
  overhead.

:class:`LoadBalancer` polls machine loads and applies a pluggable
:class:`BalancingPolicy`; :class:`SuspendResumePolicy` and
:class:`MigrateOnLoadPolicy` implement the two philosophies (benchmark E6
compares them), and :class:`NoActionPolicy` is the control.
"""

from repro.loadbalance.policies import (
    BalancingPolicy,
    MigrateOnLoadPolicy,
    NoActionPolicy,
    SuspendResumePolicy,
)
from repro.loadbalance.balancer import LoadBalancer

__all__ = [
    "LoadBalancer",
    "BalancingPolicy",
    "SuspendResumePolicy",
    "MigrateOnLoadPolicy",
    "NoActionPolicy",
]
