"""Balancing policies (see package docstring)."""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.util.errors import MigrationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.loadbalance.balancer import LoadBalancer
    from repro.machines.machine import Machine
    from repro.runtime.instance import TaskInstance


class BalancingPolicy(abc.ABC):
    """Reaction to load transitions on one machine.

    ``on_busy`` fires when a machine's *background* (locally-initiated)
    load crosses above the busy threshold while hosting VCE instances;
    ``on_idle`` fires when it drops back below.
    """

    name: str = "abstract"

    @abc.abstractmethod
    def on_busy(
        self, balancer: "LoadBalancer", machine: "Machine", instances: list["TaskInstance"]
    ) -> None: ...

    @abc.abstractmethod
    def on_idle(
        self, balancer: "LoadBalancer", machine: "Machine", instances: list["TaskInstance"]
    ) -> None: ...


class NoActionPolicy(BalancingPolicy):
    """Control: remote tasks keep running (and crawling) under local load."""

    name = "none"

    def on_busy(self, balancer, machine, instances) -> None:
        pass

    def on_idle(self, balancer, machine, instances) -> None:
        pass


class SuspendResumePolicy(BalancingPolicy):
    """The Stealth/DAWGS philosophy: "suspend (or drastically reduce the
    local dispatching priority of) remotely initiated tasks when resource
    requirements of locally initiated processes increase. Execution of
    remote tasks is resumed when activity of locally initiated tasks
    diminishes." (§4.3)"""

    name = "suspend"

    def on_busy(self, balancer, machine, instances) -> None:
        for instance in instances:
            instance.suspend()
        balancer.sim.emit(
            "lb.suspend", machine.name, count=len(instances), policy=self.name
        )

    def on_idle(self, balancer, machine, instances) -> None:
        resumed = 0
        for instance in instances:
            if instance._suspended:
                instance.resume()
                resumed += 1
        if resumed:
            balancer.sim.emit("lb.resume", machine.name, count=resumed, policy=self.name)


class MigrateOnLoadPolicy(BalancingPolicy):
    """Move remote work off busy machines to the least-loaded alternative,
    using the migration selector's cheapest eligible scheme."""

    name = "migrate"

    def __init__(self, selector) -> None:
        #: a repro.migration.MigrationSelector
        self.selector = selector

    def on_busy(self, balancer, machine, instances) -> None:
        taken: set[str] = {machine.name}  # spread this round's migrations
        for instance in instances:
            target = balancer.least_loaded_machine(exclude=taken)
            if target is None:
                target = balancer.least_loaded_machine(exclude={machine.name})
            if target is None:
                balancer.sim.emit("lb.no_target", machine.name)
                return
            taken.add(target)
            app, record = balancer.locate(instance)
            if app is None or record is None or record.instance is not instance:
                continue  # redundant copy or stale reference: skip
            try:
                scheme = self.selector.migrate(app, record, target)
            except MigrationError as err:
                balancer.sim.emit("lb.migrate_failed", machine.name, reason=str(err))
                continue
            balancer.sim.emit(
                "lb.migrate",
                machine.name,
                task=record.task,
                rank=record.rank,
                dst=target,
                scheme=scheme.name,
            )

    def on_idle(self, balancer, machine, instances) -> None:
        pass  # migrated tasks stay where they are
