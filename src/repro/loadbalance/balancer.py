"""The load balancer: periodic load monitoring + policy application."""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.loadbalance.policies import BalancingPolicy
    from repro.machines.database import MachineDatabase
    from repro.netsim.kernel import Simulator
    from repro.runtime.app import Application, InstanceRecord
    from repro.runtime.instance import TaskInstance
    from repro.runtime.manager import RuntimeManager


class LoadBalancer:
    """Polls every machine's background load each ``interval`` seconds and
    notifies the policy on busy/idle transitions.

    Only *background* (locally-initiated) load drives transitions — the
    point of both philosophies is to yield to the machine's owner, not to
    react to the VCE's own work.
    """

    def __init__(
        self,
        runtime: "RuntimeManager",
        database: "MachineDatabase",
        policy: "BalancingPolicy",
        busy_threshold: float = 0.5,
        interval: float = 1.0,
    ) -> None:
        self.runtime = runtime
        self.database = database
        self.policy = policy
        self.busy_threshold = busy_threshold
        self.interval = interval
        self._was_busy: dict[str, bool] = {}
        self._running = False
        self.transitions = 0

    @property
    def sim(self) -> "Simulator":
        return self.runtime.sim

    # ---------------------------------------------------------------- control

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.schedule(self.interval, self._tick, daemon=True)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        now = self.sim.now
        for machine in self.database:
            busy = machine.load_at(now) >= self.busy_threshold
            was = self._was_busy.get(machine.name, False)
            if busy == was:
                continue
            self._was_busy[machine.name] = busy
            instances = self.runtime.instances_on(machine.name)
            remote = [i for i in instances if not i.state.terminal]
            if not remote and busy:
                continue  # nothing hosted; nothing to do
            self.transitions += 1
            if busy:
                self.sim.emit("lb.busy", machine.name, hosted=len(remote))
                self.policy.on_busy(self, machine, remote)
            else:
                self.sim.emit("lb.idle", machine.name, hosted=len(remote))
                self.policy.on_idle(self, machine, remote)
        self.sim.schedule(self.interval, self._tick, daemon=True)

    # ---------------------------------------------------------------- helpers

    def least_loaded_machine(self, exclude: set[str] = frozenset()) -> str | None:
        """Least-background-loaded, up, non-excluded machine (ties by name)."""
        best_name, best_load = None, None
        now = self.sim.now
        for machine in self.database:
            if machine.name in exclude:
                continue
            host = self.runtime.network.hosts.get(machine.name)
            if host is None or not host.up:
                continue
            load = machine.load_at(now)
            if best_load is None or (load, machine.name) < (best_load, best_name):
                best_name, best_load = machine.name, load
        return best_name

    def locate(
        self, instance: "TaskInstance"
    ) -> tuple["Application | None", "InstanceRecord | None"]:
        """Find the application record owning *instance* (None for
        redundant copies, which records track separately)."""
        for app in self.runtime.apps.values():
            record = app.records.get((instance.ctx.task, instance.ctx.rank))
            if record is not None and instance.ctx.app == app.id:
                return app, record
        return None, None
