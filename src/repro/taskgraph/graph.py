"""The task graph container and its structural analyses."""

from __future__ import annotations

from typing import Iterable, Iterator

import networkx as nx

from repro.taskgraph.arc import Arc, ArcKind
from repro.taskgraph.node import TaskNode
from repro.util.errors import TaskGraphError


class TaskGraph:
    """A named collection of :class:`TaskNode` connected by :class:`Arc`.

    Precedence arcs (DEPENDENCY, DATA) must form a DAG — checked by
    :meth:`validate`. STREAM arcs describe concurrent message exchange and
    may form cycles.
    """

    def __init__(self, name: str = "app") -> None:
        self.name = name
        self._nodes: dict[str, TaskNode] = {}
        self._arcs: list[Arc] = []
        # adjacency indexes (arc insertion order preserved): neighbourhood
        # queries are on the dispatch hot path and must not scan every arc
        self._arcs_out: dict[str, list[Arc]] = {}
        self._arcs_in: dict[str, list[Arc]] = {}

    # -- construction ---------------------------------------------------------

    def add_task(self, node: TaskNode) -> TaskNode:
        if node.name in self._nodes:
            raise TaskGraphError(f"duplicate task {node.name!r}")
        self._nodes[node.name] = node
        return node

    def add_arc(self, arc: Arc) -> Arc:
        for end in (arc.src, arc.dst):
            if end not in self._nodes:
                raise TaskGraphError(f"arc references unknown task {end!r}")
        self._arcs.append(arc)
        self._arcs_out.setdefault(arc.src, []).append(arc)
        self._arcs_in.setdefault(arc.dst, []).append(arc)
        return arc

    def connect(
        self,
        src: str,
        dst: str,
        kind: ArcKind = ArcKind.DEPENDENCY,
        volume: int = 0,
        channel: str | None = None,
    ) -> Arc:
        """Convenience: build and add an arc."""
        return self.add_arc(Arc(src, dst, kind, volume, channel))

    # -- access -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __iter__(self) -> Iterator[TaskNode]:
        return iter(self._nodes.values())

    def task(self, name: str) -> TaskNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise TaskGraphError(f"unknown task {name!r}") from None

    @property
    def tasks(self) -> list[TaskNode]:
        return list(self._nodes.values())

    @property
    def arcs(self) -> list[Arc]:
        return list(self._arcs)

    def arcs_from(self, name: str) -> list[Arc]:
        return list(self._arcs_out.get(name, ()))

    def arcs_into(self, name: str) -> list[Arc]:
        return list(self._arcs_in.get(name, ()))

    def predecessors(self, name: str) -> list[str]:
        """Tasks that must complete before *name* may start."""
        return [a.src for a in self._arcs_in.get(name, ()) if a.kind.is_precedence]

    def successors(self, name: str) -> list[str]:
        return [a.dst for a in self._arcs_out.get(name, ()) if a.kind.is_precedence]

    def stream_peers(self, name: str) -> list[str]:
        """Tasks this one exchanges messages with at runtime."""
        peers = [
            a.dst for a in self._arcs_out.get(name, ()) if a.kind is ArcKind.STREAM
        ]
        peers += [
            a.src for a in self._arcs_in.get(name, ()) if a.kind is ArcKind.STREAM
        ]
        return peers

    # -- analyses ---------------------------------------------------------------

    def _precedence_digraph(self) -> nx.DiGraph:
        g = nx.DiGraph()
        g.add_nodes_from(self._nodes)
        for arc in self._arcs:
            if arc.kind.is_precedence:
                g.add_edge(arc.src, arc.dst)
        return g

    def validate(self) -> None:
        """Raise :class:`TaskGraphError` on structural problems."""
        g = self._precedence_digraph()
        if not nx.is_directed_acyclic_graph(g):
            cycle = nx.find_cycle(g)
            pretty = " -> ".join(edge[0] for edge in cycle) + f" -> {cycle[0][0]}"
            raise TaskGraphError(f"precedence cycle: {pretty}")

    def topological_order(self) -> list[str]:
        """Deterministic topological order (ties broken lexicographically)."""
        self.validate()
        return list(nx.lexicographical_topological_sort(self._precedence_digraph()))

    def levels(self) -> list[list[str]]:
        """Antichains of tasks with equal precedence depth — everything in a
        level may run concurrently once the previous level completes."""
        order = self.topological_order()
        depth: dict[str, int] = {}
        for name in order:
            preds = self.predecessors(name)
            depth[name] = 1 + max((depth[p] for p in preds), default=-1)
        out: list[list[str]] = []
        for name in order:
            while len(out) <= depth[name]:
                out.append([])
            out[depth[name]].append(name)
        return out

    def roots(self) -> list[str]:
        """Tasks with no precedence predecessors (dispatchable immediately)."""
        return [n for n in self._nodes if not self.predecessors(n)]

    def sinks(self) -> list[str]:
        return [n for n in self._nodes if not self.successors(n)]

    def critical_path(self) -> tuple[list[str], float]:
        """Longest work-weighted precedence path: the lower bound on makespan
        at speed 1. Returns (task names, total work)."""
        self.validate()
        order = self.topological_order()
        best: dict[str, float] = {}
        prev: dict[str, str | None] = {}
        for name in order:
            preds = self.predecessors(name)
            if preds:
                pick = max(preds, key=lambda p: best[p])
                best[name] = best[pick] + self._nodes[name].work
                prev[name] = pick
            else:
                best[name] = self._nodes[name].work
                prev[name] = None
        if not best:
            return [], 0.0
        end = max(best, key=lambda n: best[n])
        path: list[str] = []
        cursor: str | None = end
        while cursor is not None:
            path.append(cursor)
            cursor = prev[cursor]
        return path[::-1], best[end]

    def total_work(self) -> float:
        return sum(t.work * t.instances for t in self._nodes.values())

    # -- export ----------------------------------------------------------------

    def to_networkx(self) -> nx.DiGraph:
        """Full graph (all arc kinds) with node/arc attributes."""
        g = nx.DiGraph(name=self.name)
        for node in self._nodes.values():
            g.add_node(
                node.name,
                work=node.work,
                instances=node.instances,
                problem_class=node.problem_class.value if node.problem_class else None,
            )
        for arc in self._arcs:
            g.add_edge(arc.src, arc.dst, kind=arc.kind.value, volume=arc.volume)
        return g

    def to_dot(self) -> str:
        """GraphViz rendering of the task graph — the VCE's "visual
        representation" of an application."""
        lines = [f'digraph "{self.name}" {{']
        for node in self._nodes.values():
            cls = node.problem_class.value if node.problem_class else "?"
            label = f"{node.name}\\n[{cls}] x{node.instances}"
            shape = "box" if node.local else "ellipse"
            lines.append(f'  "{node.name}" [label="{label}", shape={shape}];')
        for arc in self._arcs:
            style = "dashed" if arc.kind is ArcKind.STREAM else "solid"
            lines.append(f'  "{arc.src}" -> "{arc.dst}" [style={style}];')
        lines.append("}")
        return "\n".join(lines)

    # -- helpers ------------------------------------------------------------------

    def subset(self, names: Iterable[str]) -> "TaskGraph":
        """Induced subgraph on *names* (used by per-group dispatch)."""
        # dict, not set: node insertion order must follow the caller's order,
        # not hash order, or downstream dispatch order becomes seed-dependent
        keep = dict.fromkeys(names)
        out = TaskGraph(f"{self.name}.subset")
        for name in keep:
            out.add_task(self.task(name))
        for arc in self._arcs:
            if arc.src in keep and arc.dst in keep:
                out.add_arc(arc)
        return out
