"""Arcs: the communication and synchronization relationships among tasks."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.errors import TaskGraphError


class ArcKind(enum.Enum):
    """What an arc means for the runtime.

    - DEPENDENCY: pure precedence — dst may not start until src completes
      (these arcs must form a DAG).
    - DATA: src's output files/values feed dst (implies precedence).
    - STREAM: src and dst run concurrently and exchange messages over a
      channel (no precedence; may form cycles, e.g. request/reply pairs).
    """

    DEPENDENCY = "dependency"
    DATA = "data"
    STREAM = "stream"

    @property
    def is_precedence(self) -> bool:
        return self in (ArcKind.DEPENDENCY, ArcKind.DATA)


@dataclass(frozen=True)
class Arc:
    """A directed arc between two named tasks.

    Attributes:
        src / dst: task names.
        kind: see :class:`ArcKind`.
        volume: bytes transferred over the arc (DATA: once at completion;
            STREAM: an estimate of total traffic for placement decisions).
        channel: optional explicit channel name for STREAM arcs; arcs naming
            the same channel share one logical transport medium.
    """

    src: str
    dst: str
    kind: ArcKind = ArcKind.DEPENDENCY
    volume: int = 0
    channel: str | None = None

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise TaskGraphError(f"self-arc on task {self.src!r}")
        if self.volume < 0:
            raise TaskGraphError(f"arc {self.src}->{self.dst}: negative volume")
