"""Task graphs — the VCE's application representation.

"A VCE application is broken down into functional components called tasks,
which are represented visually using a task graph. ... The task graph defines
the input, output, and function of each task. The nodes in the task graph are
connected by arcs which define the communication and synchronization
relationships among the tasks." (§3.1)

The SDM layers annotate this graph (problem class, sources, hints); the EXM
uses it to compile, place, and run the application.
"""

from repro.taskgraph.node import (
    ExecutionHints,
    ProblemClass,
    TaskNature,
    TaskNode,
)
from repro.taskgraph.arc import Arc, ArcKind
from repro.taskgraph.graph import TaskGraph

__all__ = [
    "TaskGraph",
    "TaskNode",
    "Arc",
    "ArcKind",
    "ProblemClass",
    "TaskNature",
    "ExecutionHints",
]
