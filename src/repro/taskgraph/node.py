"""Task nodes and their annotations.

A node accumulates information as it flows through the SDM layers:

- the *problem specification layer* creates it with a name, function
  description, and input/output files;
- the *design stage* assigns a :class:`ProblemClass` (Fox's problem
  architectures: synchronous / loosely synchronous / asynchronous) and
  optional :class:`TaskNature` flags (graphic, interactive);
- the *coding level* attaches an implementation language, the program body,
  and :class:`ExecutionHints` for the execution module.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.util.errors import TaskGraphError


class ProblemClass(enum.Enum):
    """Fox's three broad classes of problem architecture (§3.1.1).

    "There are three broad classes of problem architectures: synchronous,
    loosely synchronous, and asynchronous, which describe the temporal (time
    or synchronization) structure of the problem."
    """

    SYNCHRONOUS = "SYNC"
    LOOSELY_SYNCHRONOUS = "LOOSESYNC"
    ASYNCHRONOUS = "ASYNC"

    @classmethod
    def parse(cls, text: str) -> "ProblemClass":
        normalized = text.strip().upper().replace("-", "").replace("_", "")
        table = {
            "SYNC": cls.SYNCHRONOUS,
            "SYNCHRONOUS": cls.SYNCHRONOUS,
            "LOOSESYNC": cls.LOOSELY_SYNCHRONOUS,
            "LOOSELYSYNCHRONOUS": cls.LOOSELY_SYNCHRONOUS,
            "ASYNC": cls.ASYNCHRONOUS,
            "ASYNCHRONOUS": cls.ASYNCHRONOUS,
        }
        try:
            return table[normalized]
        except KeyError:
            raise ValueError(f"unknown problem class {text!r}") from None


class TaskNature(enum.Flag):
    """Auxiliary task classifications "that capture the nature of the task,
    such as graphic or interactive" (§3.1.1), used by lower layers when
    mapping tasks onto machines."""

    NONE = 0
    GRAPHIC = enum.auto()
    INTERACTIVE = enum.auto()
    IO_INTENSIVE = enum.auto()
    COMPUTE_INTENSIVE = enum.auto()


@dataclass
class ExecutionHints:
    """User-supplied hints recorded on the task graph (§3.1.1).

    "These hints will allow the execution module to do extra optimization.
    For instance, suppose a particular application has three functionally
    parallel modules and the user expects one to run much longer than the
    combined running times of the other two. If the system is aware of this,
    dispatching of the longer job can be given higher priority."

    Attributes:
        runtime_weight: expected relative running time among siblings;
            larger → dispatched earlier.
        priority: base scheduling priority (authorized users may raise it).
        migratable: whether the task tolerates migration.
        checkpointable: whether the task cooperates with checkpointing.
        redundancy: how many redundant copies the user requests (1 = none).
    """

    runtime_weight: float = 1.0
    priority: float = 0.0
    migratable: bool = True
    checkpointable: bool = True
    redundancy: int = 1


@dataclass
class TaskNode:
    """One task in the graph.

    Attributes:
        name: unique node name within its graph.
        function: human-readable statement of what the task does.
        work: total compute demand in work units (a speed-1.0 workstation
            does one unit per second).
        instances: how many copies of this task the application wants
            (the script's ``ASYNC 2 "collector"`` creates instances=2).
        problem_class: design-stage temporal classification.
        nature: auxiliary design-stage flags.
        language: coding-level implementation language tag.
        program: coding-level program body — a generator factory taking
            (task context) and yielding runtime syscalls; None until coded.
        memory_mb: memory requirement per instance.
        input_files / output_files: file requirements (placement constraint
            and anticipatory-replication subject).
        requirements: extra hardware requirements matched against
            :meth:`repro.machines.Machine.satisfies`.
        hints: user execution hints.
        local: run on the user's own workstation (the script's LOCAL
            directive); never dispatched remotely.
    """

    name: str
    function: str = ""
    work: float = 1.0
    instances: int = 1
    problem_class: ProblemClass | None = None
    nature: TaskNature = TaskNature.NONE
    language: str | None = None
    program: Callable[..., Any] | None = None
    memory_mb: int = 1
    input_files: list[str] = field(default_factory=list)
    output_files: list[str] = field(default_factory=list)
    requirements: dict[str, Any] = field(default_factory=dict)
    hints: ExecutionHints = field(default_factory=ExecutionHints)
    local: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise TaskGraphError("task name must be non-empty")
        if self.work < 0:
            raise TaskGraphError(f"task {self.name!r}: work must be >= 0")
        if self.instances < 1:
            raise TaskGraphError(f"task {self.name!r}: instances must be >= 1")
        if self.hints.redundancy < 1:
            raise TaskGraphError(f"task {self.name!r}: redundancy must be >= 1")

    @property
    def designed(self) -> bool:
        """True once the design stage has classified this task."""
        return self.problem_class is not None

    @property
    def coded(self) -> bool:
        """True once the coding level attached language and program."""
        return self.language is not None and self.program is not None

    #: requirement keys that describe the *problem* (consumed by the design
    #: stage) rather than the hardware — excluded from machine matching
    DESIGN_HINT_KEYS = frozenset({"lockstep"})

    def hardware_requirements(self) -> dict[str, Any]:
        """The requirement dict used for machine matching."""
        reqs = {
            k: v for k, v in self.requirements.items() if k not in self.DESIGN_HINT_KEYS
        }
        reqs.setdefault("min_memory_mb", self.memory_mb)
        if self.input_files:
            reqs.setdefault("files", list(self.input_files))
        return reqs
