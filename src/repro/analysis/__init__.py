"""Static analysis for the VCE: task-graph verification + determinism lint.

Two prongs (see ``docs/ANALYSIS.md`` for the full rule catalog):

- :mod:`repro.analysis.graphcheck` / :mod:`repro.analysis.feasibility` —
  a pass pipeline over :class:`~repro.taskgraph.TaskGraph` that rejects
  mis-wired applications *before* dispatch: cycles, dangling arcs,
  channel/protocol misuse, missing or contradictory SDM annotations, and
  problem-class → machine-class infeasibility against the compilation
  manager's database. Enforced pre-dispatch via ``VCEConfig.verify``
  (``off | warn | strict``) and surfaced by the ``repro lint`` CLI.

- :mod:`repro.analysis.detlint` — an AST lint over the source tree that
  flags determinism hazards (wall-clock calls, process-global randomness,
  unordered-set iteration in scheduling paths), protecting the
  byte-identical-replay guarantees the chaos harness depends on.
"""

from repro.analysis.detlint import (
    iter_python_files,
    lint_paths,
    lint_source,
    load_baseline,
)
from repro.analysis.feasibility import FeasibilityPass
from repro.analysis.graphcheck import (
    DEFAULT_PASSES,
    GraphVerifier,
    verify_graph,
)
from repro.analysis.report import AnalysisReport, Finding, Severity

__all__ = [
    "AnalysisReport",
    "Finding",
    "Severity",
    "GraphVerifier",
    "FeasibilityPass",
    "DEFAULT_PASSES",
    "verify_graph",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "iter_python_files",
]
