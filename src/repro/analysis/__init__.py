"""Static analysis for the VCE: task-graph verification + determinism lint.

Two prongs (see ``docs/ANALYSIS.md`` for the full rule catalog):

- :mod:`repro.analysis.graphcheck` / :mod:`repro.analysis.feasibility` —
  a pass pipeline over :class:`~repro.taskgraph.TaskGraph` that rejects
  mis-wired applications *before* dispatch: cycles, dangling arcs,
  channel/protocol misuse, missing or contradictory SDM annotations, and
  problem-class → machine-class infeasibility against the compilation
  manager's database. Enforced pre-dispatch via ``VCEConfig.verify``
  (``off | warn | strict``) and surfaced by the ``repro lint`` CLI.

- :mod:`repro.analysis.detlint` — an AST lint over the source tree that
  flags determinism hazards (wall-clock calls, process-global randomness,
  unordered-set iteration in scheduling paths), protecting the
  byte-identical-replay guarantees the chaos harness depends on.

- :mod:`repro.analysis.hb` / :mod:`repro.analysis.protocol` /
  :mod:`repro.analysis.sanitize` — the dynamic prong: happens-before
  race detection over the backends' schedule-parent tree, protocol FSM
  conformance over event logs (live or saved run directories), and the
  tie-shuffle harness that classifies candidate races as real or benign.
  Surfaced by ``repro sanitize`` and ``repro lint --hb``.
"""

from repro.analysis.detlint import (
    iter_python_files,
    lint_paths,
    lint_source,
    load_baseline,
)
from repro.analysis.feasibility import FeasibilityPass
from repro.analysis.graphcheck import (
    DEFAULT_PASSES,
    GraphVerifier,
    verify_graph,
)
from repro.analysis.hb import RACE_RULES, HBTracker
from repro.analysis.protocol import (
    DEFAULT_FSMS,
    ProtocolFSM,
    ProtocolMonitor,
    check_protocol_sources,
    check_records,
)
from repro.analysis.report import AnalysisReport, Finding, Severity
from repro.analysis.sanitize import SCENARIOS, outcome_digest, sanitize_scenario

__all__ = [
    "AnalysisReport",
    "Finding",
    "Severity",
    "GraphVerifier",
    "FeasibilityPass",
    "DEFAULT_PASSES",
    "verify_graph",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "iter_python_files",
    "HBTracker",
    "RACE_RULES",
    "ProtocolFSM",
    "ProtocolMonitor",
    "DEFAULT_FSMS",
    "check_records",
    "check_protocol_sources",
    "SCENARIOS",
    "outcome_digest",
    "sanitize_scenario",
]
