"""The static task-graph verifier: a pass pipeline over :class:`TaskGraph`.

Nothing here executes the application — every check is a structural or
annotation analysis of the graph the SDM layers produced, run *before*
dispatch so a mis-wired graph is rejected at submit time instead of
failing deep inside the scheduler. The rule catalog (stable ids, see
``docs/ANALYSIS.md``):

Structure
    - G001 cycle: precedence arcs (DEPENDENCY/DATA) form a cycle.
    - G002 self-arc: an arc whose src and dst are the same task.
    - G003 dangling-arc: an arc endpoint names no task in the graph.
    - G004 orphan-task: a task no arc touches, in a multi-task graph.

Channels and protocol
    - G005 channel-on-precedence-arc: a DEPENDENCY/DATA arc declares a
      channel (channels are STREAM transport; precedence arcs never
      carry one).
    - G006 undeclared-channel: a task program sends or receives on a
      named channel that no arc of that task declares.

vMPI
    - G007 rank-out-of-range: a program Send/Recv addresses a constant
      rank outside the task's communicator (``rank >= instances``).
    - G008 unmatched-send: a constant-tag communicator send that no
      program in the graph ever receives (collective internal tags are
      matched pairwise by the library and exempt).

SDM annotations
    - G010 undesigned: the design stage never classified the task.
    - G011 uncoded: the coding level never attached language/program.
    - G012 lone-synchronous: a SYNCHRONOUS task with one instance and no
      stream peers — synchronous semantics need a peer group.
    - G013 contradictory-annotation: a ``lockstep`` design hint on a
      task classified ASYNCHRONOUS.

Feasibility (G020/G021/G022) lives in :mod:`repro.analysis.feasibility`
and only runs when a compilation manager is supplied.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Callable, Iterable

import networkx as nx

from repro.analysis.report import AnalysisReport, Finding, Severity
from repro.taskgraph import ArcKind, ProblemClass, TaskGraph

#: A verifier pass: graph -> findings.
GraphPass = Callable[[TaskGraph], list[Finding]]

#: vMPI collective helpers whose internal tags pair up inside the library.
COLLECTIVE_NAMES = frozenset(
    {"bcast", "reduce", "allreduce", "barrier", "scatter", "gather",
     "allgather", "sendrecv", "alltoall"}
)
#: Tags those helpers use on the wire; always matched, never reported.
_LIBRARY_TAGS = frozenset(
    {"__bcast__", "__reduce__", "__scatter__", "__gather__",
     "__alltoall__", "__sendrecv__"}
)


# ------------------------------------------------------------------ structure


def pass_cycles(graph: TaskGraph) -> list[Finding]:
    """G001: precedence cycles (the runtime's topological dispatch would
    deadlock — no root to start from inside the cycle)."""
    g = nx.DiGraph()
    g.add_nodes_from(t.name for t in graph)
    for arc in graph.arcs:
        if arc.kind.is_precedence and arc.src != arc.dst:
            if arc.src in g and arc.dst in g:
                g.add_edge(arc.src, arc.dst)
    out: list[Finding] = []
    # Report one representative cycle per strongly connected component so a
    # single mis-wired loop yields one finding, not factorially many.
    for component in nx.strongly_connected_components(g):
        if len(component) < 2:
            continue
        cycle = nx.find_cycle(g.subgraph(component))
        pretty = " -> ".join(edge[0] for edge in cycle) + f" -> {cycle[0][0]}"
        out.append(
            Finding(
                "G001",
                Severity.ERROR,
                f"precedence cycle: {pretty}",
                locus=f"task {min(component)}",
                hint="break the loop or use STREAM arcs for concurrent exchange",
            )
        )
    return sorted(out, key=lambda f: f.locus)


def pass_self_arcs(graph: TaskGraph) -> list[Finding]:
    """G002: src == dst (only constructible by bypassing Arc validation,
    but the verifier must not trust its input)."""
    return [
        Finding(
            "G002",
            Severity.ERROR,
            f"self-arc on task {arc.src!r}",
            locus=f"arc {arc.src}->{arc.dst}",
            hint="a task needs no arc to synchronize with itself; delete it",
        )
        for arc in graph.arcs
        if arc.src == arc.dst
    ]


def pass_dangling_arcs(graph: TaskGraph) -> list[Finding]:
    """G003: arc endpoints that name no task."""
    out = []
    for arc in graph.arcs:
        for end in (arc.src, arc.dst):
            if end not in graph:
                out.append(
                    Finding(
                        "G003",
                        Severity.ERROR,
                        f"arc references unknown task {end!r}",
                        locus=f"arc {arc.src}->{arc.dst}",
                        hint="declare the task or remove the arc",
                    )
                )
    return out


def pass_orphans(graph: TaskGraph) -> list[Finding]:
    """G004: tasks no arc touches. Legal (they just run independently) but
    in a multi-task application an island is usually a wiring mistake."""
    if len(graph) < 2:
        return []
    touched: set[str] = set()
    for arc in graph.arcs:
        touched.add(arc.src)
        touched.add(arc.dst)
    return [
        Finding(
            "G004",
            Severity.WARNING,
            f"task {node.name!r} is connected to nothing",
            locus=f"task {node.name}",
            hint="wire it into the graph or submit it as its own application",
        )
        for node in graph
        if node.name not in touched
    ]


# ----------------------------------------------------------- channels / vMPI


def pass_channel_misuse(graph: TaskGraph) -> list[Finding]:
    """G005: channel names on precedence arcs."""
    return [
        Finding(
            "G005",
            Severity.WARNING,
            f"{arc.kind.value} arc declares channel {arc.channel!r}; "
            "only STREAM arcs carry channels",
            locus=f"arc {arc.src}->{arc.dst}",
            hint="make the arc STREAM or drop the channel name",
        )
        for arc in graph.arcs
        if arc.channel is not None and arc.kind is not ArcKind.STREAM
    ]


def _program_ast(node) -> ast.AST | None:
    """Best-effort AST of a task's program body (None when unavailable —
    builtins, C callables, interactively-defined functions)."""
    if node.program is None:
        return None
    try:
        source = textwrap.dedent(inspect.getsource(node.program))
        return ast.parse(source)
    except (OSError, TypeError, SyntaxError, IndentationError):
        return None


def _comm_calls(tree: ast.AST) -> list[ast.Call]:
    """All Send(...)/Recv(...) constructor calls in a program body."""
    out = []
    for stmt in ast.walk(tree):
        if isinstance(stmt, ast.Call):
            fn = stmt.func
            name = fn.id if isinstance(fn, ast.Name) else (
                fn.attr if isinstance(fn, ast.Attribute) else None
            )
            if name in ("Send", "Recv"):
                out.append(stmt)
    return out


def _call_kwarg(call: ast.Call, name: str, pos: int | None = None):
    """Constant value of keyword *name* (or positional *pos*); returns
    (present, value) where value is None unless a literal constant."""
    for kw in call.keywords:
        if kw.arg == name:
            if isinstance(kw.value, ast.Constant):
                return True, kw.value.value
            return True, None
    if pos is not None and len(call.args) > pos:
        arg = call.args[pos]
        if isinstance(arg, ast.Constant):
            return True, arg.value
        return True, None
    return False, None


def _call_name(call: ast.Call) -> str:
    fn = call.func
    if isinstance(fn, ast.Name):
        return fn.id
    if isinstance(fn, ast.Attribute):
        return fn.attr
    return ""


def pass_program_comms(graph: TaskGraph) -> list[Finding]:
    """G006/G007/G008: static analysis of task program bodies.

    Only constant arguments are judged; anything dynamic is assumed
    correct (this is a linter, not a verifier of halting problems).
    """
    out: list[Finding] = []
    declared: dict[str, set[str]] = {t.name: set() for t in graph}
    for arc in graph.arcs:
        if arc.channel is not None:
            declared.setdefault(arc.src, set()).add(arc.channel)
            declared.setdefault(arc.dst, set()).add(arc.channel)

    # (channel|None, tag) inventories across all programs, for G008
    sends: list[tuple[str, ast.Call, object, object]] = []  # task, call, chan, tag
    recv_keys: set[tuple[object, object]] = set()
    wildcard_recv_channels: set[object] = set()

    for node in graph:
        tree = _program_ast(node)
        if tree is None:
            continue
        uses_collectives = any(
            isinstance(c, ast.Call) and _call_name(c) in COLLECTIVE_NAMES
            for c in ast.walk(tree)
        )
        for call in _comm_calls(tree):
            kind = _call_name(call)
            has_chan, chan = _call_kwarg(call, "channel")
            if has_chan and isinstance(chan, str) and chan not in declared.get(node.name, set()):
                out.append(
                    Finding(
                        "G006",
                        Severity.WARNING,
                        f"program {kind}s on channel {chan!r} that no arc of "
                        f"task {node.name!r} declares",
                        locus=f"task {node.name}",
                        hint=f"add a STREAM arc with channel={chan!r} or fix the name",
                    )
                )
            target_kw = "dst" if kind == "Send" else "src"
            has_target, target = _call_kwarg(call, target_kw, pos=0)
            if (
                not has_chan
                and isinstance(target, int)
                and target >= node.instances
                and not uses_collectives
            ):
                # collectives compute ranks from ctx.size; a constant rank
                # beyond instances in plain code can never be delivered
                out.append(
                    Finding(
                        "G007",
                        Severity.ERROR,
                        f"{kind} addresses rank {target} but task "
                        f"{node.name!r} has {node.instances} instance(s)",
                        locus=f"task {node.name}",
                        hint="raise instances or fix the rank arithmetic",
                    )
                )
            _, tag = _call_kwarg(call, "tag")
            chan_key = chan if has_chan else None
            if kind == "Send":
                sends.append((node.name, call, chan_key, tag))
            else:
                recv_keys.add((chan_key, tag))
                if tag is None:
                    wildcard_recv_channels.add(chan_key)

    for task, call, chan_key, tag in sends:
        if not isinstance(tag, str) or tag in _LIBRARY_TAGS:
            continue
        if (chan_key, tag) in recv_keys or chan_key in wildcard_recv_channels:
            continue
        where = f"channel {chan_key!r}" if chan_key else "the communicator"
        out.append(
            Finding(
                "G008",
                Severity.WARNING,
                f"Send(tag={tag!r}) on {where} is never received by any program",
                locus=f"task {task}",
                hint="add the matching Recv or fix the tag",
            )
        )
    return out


def pass_comm_reachability(graph: TaskGraph) -> list[Finding]:
    """P004: Send/Recv sites that can never be reached in the program.

    The protocol FSMs (:mod:`repro.analysis.protocol`) model a task's
    communication as open → send/recv* → close; a comm call that appears
    after a terminal statement (``return``/``raise``/``break``/``continue``)
    in the same block is statically unreachable — the FSM can never take
    that transition, so the declared protocol and the program disagree.
    """
    out: list[Finding] = []
    terminal = (ast.Return, ast.Raise, ast.Break, ast.Continue)
    for node in graph:
        tree = _program_ast(node)
        if tree is None:
            continue
        dead: list[tuple[str, int]] = []
        for owner in ast.walk(tree):
            for block_field in ("body", "orelse", "finalbody"):
                body = getattr(owner, block_field, None)
                if not isinstance(body, list):
                    continue
                seen_terminal = False
                for stmt in body:
                    if seen_terminal and isinstance(stmt, ast.stmt):
                        for call in ast.walk(stmt):
                            if isinstance(call, ast.Call) and _call_name(call) in (
                                "Send", "Recv"
                            ):
                                dead.append((_call_name(call), call.lineno))
                    if isinstance(stmt, terminal):
                        seen_terminal = True
        for kind, lineno in sorted(set(dead)):
            out.append(
                Finding(
                    "P004",
                    Severity.WARNING,
                    f"{kind} at program line {lineno} of task {node.name!r} "
                    "is unreachable (follows a terminal statement) — the "
                    "comm site can never be taken in the protocol FSM",
                    locus=f"task {node.name}",
                    hint="delete the dead comm call or move it before the "
                         "return/raise",
                )
            )
    return out


# -------------------------------------------------------------- annotations


def pass_annotations(graph: TaskGraph) -> list[Finding]:
    """G010-G013: missing or contradictory SDM annotations."""
    out: list[Finding] = []
    for node in graph:
        locus = f"task {node.name}"
        if node.problem_class is None:
            out.append(
                Finding(
                    "G010",
                    Severity.ERROR,
                    f"task {node.name!r} was never design-classified",
                    locus=locus,
                    hint="run the DesignStage or set node.problem_class",
                )
            )
        if node.language is None or node.program is None:
            missing = "language and program" if (
                node.language is None and node.program is None
            ) else ("language" if node.language is None else "program")
            out.append(
                Finding(
                    "G011",
                    Severity.ERROR,
                    f"task {node.name!r} has no {missing} (coding level incomplete)",
                    locus=locus,
                    hint="attach node.language and node.program before submit",
                )
            )
        if (
            node.problem_class is ProblemClass.SYNCHRONOUS
            and node.instances == 1
            and not graph.stream_peers(node.name)
        ):
            out.append(
                Finding(
                    "G012",
                    Severity.WARNING,
                    f"task {node.name!r} is SYNCHRONOUS but has one instance "
                    "and no stream peers",
                    locus=locus,
                    hint="raise instances, add STREAM arcs, or reclassify",
                )
            )
        if (
            node.requirements.get("lockstep")
            and node.problem_class is ProblemClass.ASYNCHRONOUS
        ):
            out.append(
                Finding(
                    "G013",
                    Severity.WARNING,
                    f"task {node.name!r} hints 'lockstep' yet is classified "
                    "ASYNCHRONOUS",
                    locus=locus,
                    hint="drop the hint or classify the task SYNCHRONOUS",
                )
            )
    return out


#: Default structural/annotation passes, in run order.
DEFAULT_PASSES: tuple[GraphPass, ...] = (
    pass_cycles,
    pass_self_arcs,
    pass_dangling_arcs,
    pass_orphans,
    pass_channel_misuse,
    pass_program_comms,
    pass_comm_reachability,
    pass_annotations,
)


class GraphVerifier:
    """Runs a pass pipeline over a task graph.

    Args:
        passes: structural passes to run (default: all of
            :data:`DEFAULT_PASSES`).
        compilation: when provided, the feasibility pass
            (:mod:`repro.analysis.feasibility`) also runs, checking every
            task's problem class against the machine-class database.
    """

    def __init__(
        self,
        passes: Iterable[GraphPass] | None = None,
        compilation=None,
    ) -> None:
        self.passes: list[GraphPass] = list(passes or DEFAULT_PASSES)
        if compilation is not None:
            from repro.analysis.feasibility import FeasibilityPass

            self.passes.append(FeasibilityPass(compilation))

    def verify(self, graph: TaskGraph) -> AnalysisReport:
        report = AnalysisReport(subject=f"graph {graph.name!r}")
        for p in self.passes:
            report.extend(p(graph))
        return report


def verify_graph(graph: TaskGraph, compilation=None) -> AnalysisReport:
    """One-call verification with the default pipeline."""
    return GraphVerifier(compilation=compilation).verify(graph)
