"""detlint: an AST lint protecting the deterministic-replay guarantees.

The whole point of the simulated VCE is that one seed reproduces one run,
byte for byte — the chaos harness (PR 3) literally diffs event-log
digests. A single ``time.time()`` in a scheduling path, one draw from the
process-global ``random`` module, or an iteration over an unordered
``set`` feeding a placement decision silently breaks that. These mistakes
pass every example-based test (CPython's set order is stable *within* a
process) and then surface as unreproducible CI flakes, so they are caught
statically here instead.

Rules (stable ids, see ``docs/ANALYSIS.md``):

- D001 wall-clock (ERROR): calls to ``time.time``/``monotonic``/
  ``perf_counter`` (and ``_ns`` variants) or ``datetime.now``/``utcnow``/
  ``today``. Simulated components must use ``sim.now``.
- D002 unseeded-random (ERROR): draws from the process-global ``random``
  module, or ``random.Random()`` constructed without a seed. All
  randomness must come from :class:`repro.util.rng.RngStreams` substreams
  or an explicitly seeded ``random.Random(seed)``.
- D003 unordered-iteration (WARNING): a ``for`` loop or list
  comprehension iterating a ``set``-valued expression (set literal,
  ``set()``/``frozenset()`` call, set comprehension, set algebra, or
  ``dict.keys()`` view algebra) inside the ordering-sensitive subsystems
  (``scheduler/``, ``netsim/``, ``migration/``, ``faults/``). Wrap the
  iterable in ``sorted(...)`` to fix.
- D004 identity-keyed ordering (WARNING): ``sorted``/``.sort``/``min``/
  ``max`` whose ``key=`` is ``id`` or ``hash`` (directly or via a
  trivial lambda) in the same ordering-sensitive subsystems. ``id()``
  is an allocation address and ``hash()`` inherits it for objects
  without ``__hash__`` overrides, so the resulting order varies run to
  run. Key on a stable attribute (name, seq, time) instead.

Suppression: append ``# detlint: ok(D003)`` (comma-separate several rule
ids; a justification may follow the closing parenthesis) to the flagged
line. A repo baseline file (lines of ``RULE path`` or ``RULE path:line``,
``#`` comments allowed) grandfathers known findings without touching the
source.

Run via ``repro lint --det PATH...`` or ``python -m repro.analysis.detlint``.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.analysis.report import AnalysisReport, Finding, Severity

#: Modules whose path contains one of these directories are
#: ordering-sensitive: set iteration there perturbs scheduling decisions.
ORDER_SENSITIVE_DIRS = frozenset({"scheduler", "netsim", "migration", "faults"})

#: Wall-clock callables per module.
_WALL_CLOCK = {
    "time": {
        "time", "time_ns", "monotonic", "monotonic_ns",
        "perf_counter", "perf_counter_ns",
    },
    "datetime": {"now", "utcnow", "today"},
    "date": {"today"},
}

#: Draw methods of the global ``random`` module (not of Random instances).
_RANDOM_DRAWS = {
    "random", "randint", "randrange", "choice", "choices", "uniform",
    "shuffle", "sample", "gauss", "normalvariate", "expovariate",
    "betavariate", "gammavariate", "lognormvariate", "paretovariate",
    "weibullvariate", "vonmisesvariate", "triangular", "getrandbits",
    "randbytes", "binomialvariate", "seed",
}

_SUPPRESS_RE = re.compile(r"#\s*detlint:\s*ok\(([A-Za-z0-9_,\s]+)\)")

#: Set methods returning sets (operand order still unordered on iteration).
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)


def _dotted(node: ast.AST) -> str:
    """``a.b.c`` for an attribute chain rooted at a Name, else ''."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_set_annotation(annotation: ast.AST) -> bool:
    base = annotation.value if isinstance(annotation, ast.Subscript) else annotation
    return isinstance(base, ast.Name) and base.id in ("set", "frozenset")


class _Scope:
    """Name → is-set-valued bindings for one function (or the module)."""

    def __init__(self) -> None:
        self.names: dict[str, bool] = {}


def is_set_expr(node: ast.AST, resolve=lambda name, attr: False) -> bool:
    """Conservatively: does *node* evaluate to a set (or keys-view algebra)?

    *resolve(name, is_attribute)* answers whether a bare name / ``self.x``
    attribute is known to be set-valued in the current scope.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        fn = node.func
        if isinstance(fn, ast.Name) and fn.id in ("set", "frozenset"):
            return True
        if isinstance(fn, ast.Attribute) and fn.attr in _SET_METHODS:
            return is_set_expr(fn.value, resolve)
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return any(
            is_set_expr(side, resolve) or _is_keys_view(side)
            for side in (node.left, node.right)
        )
    if isinstance(node, ast.Name):
        return resolve(node.id, False)
    if isinstance(node, ast.Attribute):
        return resolve(node.attr, True)
    return False


def _identity_key(node: ast.AST) -> str:
    """``'id()'``/``'hash()'`` when *node* is an identity-based sort key:
    a bare ``id``/``hash`` reference, or a lambda whose body is (or whose
    tuple body contains) a call to one of them."""
    if isinstance(node, ast.Name) and node.id in ("id", "hash"):
        return f"{node.id}()"
    if isinstance(node, ast.Lambda):
        body = node.body
        candidates = body.elts if isinstance(body, ast.Tuple) else [body]
        for expr in candidates:
            if (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Name)
                and expr.func.id in ("id", "hash")
            ):
                return f"{expr.func.id}()"
    return ""


def _is_keys_view(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("keys", "items")
        and not node.args
    )


class _Linter(ast.NodeVisitor):
    def __init__(self, rel_path: str, lines: list[str], order_sensitive: bool) -> None:
        self.rel_path = rel_path
        self.lines = lines
        self.order_sensitive = order_sensitive
        self.findings: list[Finding] = []
        # import aliases: alias -> canonical module name we care about
        self.module_aliases: dict[str, str] = {}
        # names imported from those modules: local name -> (module, member)
        self.from_imports: dict[str, tuple[str, str]] = {}
        # scope stack for set-valued bindings; attributes (self.x) share one
        # module-wide table since methods commonly init them in __init__
        self.scopes: list[_Scope] = [_Scope()]
        self.attr_names: dict[str, bool] = {}

    # -- set-valued name tracking ----------------------------------------------

    def _resolve(self, name: str, is_attribute: bool) -> bool:
        if is_attribute:
            return self.attr_names.get(name, False)
        for scope in reversed(self.scopes):
            if name in scope.names:
                return scope.names[name]
        return False

    def _bind(self, target: ast.AST, set_valued: bool) -> None:
        if isinstance(target, ast.Name):
            self.scopes[-1].names[target.id] = set_valued
        elif isinstance(target, ast.Attribute):
            self.attr_names[target.attr] = set_valued
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, False)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.scopes.append(_Scope())
        self.generic_visit(node)
        self.scopes.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.scopes.append(_Scope())
        self.generic_visit(node)
        self.scopes.pop()

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        set_valued = is_set_expr(node.value, self._resolve)
        for target in node.targets:
            self._bind(target, set_valued)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        set_valued = _is_set_annotation(node.annotation) or (
            node.value is not None and is_set_expr(node.value, self._resolve)
        )
        self._bind(node.target, set_valued)

    # -- imports ---------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name in ("time", "random", "datetime"):
                self.module_aliases[alias.asname or alias.name] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module in ("time", "random", "datetime"):
            for alias in node.names:
                self.from_imports[alias.asname or alias.name] = (node.module, alias.name)
        self.generic_visit(node)

    # -- helpers ---------------------------------------------------------------

    def _suppressed(self, lineno: int, rule: str) -> bool:
        if not (1 <= lineno <= len(self.lines)):
            return False
        match = _SUPPRESS_RE.search(self.lines[lineno - 1])
        if not match:
            return False
        rules = {r.strip().upper() for r in match.group(1).split(",")}
        return rule in rules

    def _report(self, node: ast.AST, rule: str, severity: Severity,
                message: str, hint: str) -> None:
        lineno = getattr(node, "lineno", 0)
        if self._suppressed(lineno, rule):
            return
        self.findings.append(
            Finding(rule, severity, message, locus=f"{self.rel_path}:{lineno}", hint=hint)
        )

    # -- D001 / D002 -----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._check_clock_and_random(node)
        self._check_identity_key(node)
        self.generic_visit(node)

    def _check_clock_and_random(self, node: ast.Call) -> None:
        fn = node.func
        # module.attr(...) form
        if isinstance(fn, ast.Attribute):
            dotted = _dotted(fn)
            root, _, _rest = dotted.partition(".")
            module = self.module_aliases.get(root)
            leaf = fn.attr
            # datetime.datetime.now(...) / datetime.date.today(...)
            if module == "datetime" or root == "datetime":
                mid = dotted.split(".")[-2] if dotted.count(".") >= 1 else ""
                if leaf in _WALL_CLOCK["datetime"] and mid in ("datetime", "date", ""):
                    # datetime.now(tz) with an explicit tz is still wall-clock
                    self._d001(node, dotted)
                    return
            if module == "time" and leaf in _WALL_CLOCK["time"]:
                self._d001(node, dotted)
                return
            if module == "random":
                if leaf in _RANDOM_DRAWS:
                    self._d002(node, f"{dotted}() draws from the process-global RNG")
                elif leaf == "Random" and not node.args and not node.keywords:
                    self._d002(node, "random.Random() without a seed is "
                                     "OS-entropy seeded")
            return
        # bare name form, via from-imports
        if isinstance(fn, ast.Name):
            origin = self.from_imports.get(fn.id)
            if origin is None:
                return
            module, member = origin
            if module == "time" and member in _WALL_CLOCK["time"]:
                self._d001(node, f"time.{member}")
            elif module == "datetime" and member in ("datetime", "date"):
                pass  # constructor use; .now()/.today() handled above
            elif module == "random":
                if member in _RANDOM_DRAWS:
                    self._d002(node, f"random.{member}() draws from the "
                                     "process-global RNG")
                elif member == "Random" and not node.args and not node.keywords:
                    self._d002(node, "random.Random() without a seed is "
                                     "OS-entropy seeded")

    def _d001(self, node: ast.AST, what: str) -> None:
        self._report(
            node, "D001", Severity.ERROR,
            f"wall-clock call {what}() in simulated code",
            hint="use sim.now (simulation time) instead of the host clock",
        )

    def _d002(self, node: ast.AST, message: str) -> None:
        self._report(
            node, "D002", Severity.ERROR, message,
            hint="route randomness through util/rng.RngStreams or an "
                 "explicitly seeded random.Random(seed)",
        )

    # -- D004 ------------------------------------------------------------------

    def _check_identity_key(self, node: ast.Call) -> None:
        if not self.order_sensitive:
            return
        fn = node.func
        if isinstance(fn, ast.Name):
            ordering = fn.id in ("sorted", "min", "max")
        elif isinstance(fn, ast.Attribute):
            ordering = fn.attr == "sort"
        else:
            ordering = False
        if not ordering:
            return
        for kw in node.keywords:
            if kw.arg == "key" and (what := _identity_key(kw.value)):
                self._report(
                    node, "D004", Severity.WARNING,
                    f"ordering keyed on {what} is allocation-address order",
                    hint="key on a stable attribute (name, seq, time) instead "
                         "of object identity",
                )

    # -- D003 ------------------------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node, node.iter)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        for gen in node.generators:
            self._check_iteration(node, gen.iter)
        self.generic_visit(node)

    def _check_iteration(self, node: ast.AST, iterable: ast.AST) -> None:
        if not self.order_sensitive:
            return
        if is_set_expr(iterable, self._resolve):
            self._report(
                node, "D003", Severity.WARNING,
                "iteration over an unordered set in an ordering-sensitive "
                "subsystem",
                hint="wrap the iterable in sorted(...) to fix the order",
            )


def lint_source(
    source: str, rel_path: str, order_sensitive: bool | None = None
) -> list[Finding]:
    """Lint one module's source text; *rel_path* is used for loci and (when
    *order_sensitive* is None) for deciding whether D003 applies."""
    if order_sensitive is None:
        order_sensitive = bool(ORDER_SENSITIVE_DIRS & set(Path(rel_path).parts))
    try:
        tree = ast.parse(source)
    except SyntaxError as err:
        return [
            Finding(
                "D000", Severity.ERROR, f"cannot parse: {err.msg}",
                locus=f"{rel_path}:{err.lineno or 0}",
                hint="fix the syntax error first",
            )
        ]
    lines = source.splitlines()
    linter = _Linter(rel_path, lines, order_sensitive)
    linter.visit(tree)
    return sorted(linter.findings, key=lambda f: (f.locus, f.rule))


#: Directory names never descended into when expanding a directory target.
_SKIP_DIR_PARTS = frozenset({"__pycache__", ".git", ".tox", ".venv", "venv", "node_modules"})


def _keep(p: Path) -> bool:
    return not any(
        part in _SKIP_DIR_PARTS or part.startswith(".") or part.endswith(".egg-info")
        for part in p.parts[:-1]
    )


def iter_python_files(paths: list[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Directory expansion skips ``__pycache__``, hidden directories, and
    packaging litter (``.egg-info``, virtualenvs) so that a directory
    target lints the same file set on every machine; the sorted return
    keeps report (and ``--json``) order stable."""
    out: set[Path] = set()
    for path in paths:
        p = Path(path)
        if p.is_dir():
            out.update(f for f in p.rglob("*.py") if _keep(f))
        elif p.suffix == ".py":
            out.add(p)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {p}")
    return sorted(out)


def load_baseline(path: str | Path) -> list[tuple[str, str, int | None]]:
    """Parse a baseline file into (rule, path, line|None) waivers."""
    entries: list[tuple[str, str, int | None]] = []
    for raw in Path(path).read_text().splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        rule, _, rest = line.partition(" ")
        rest = rest.strip()
        file_part, _, line_part = rest.partition(":")
        entries.append(
            (rule.upper(), file_part, int(line_part) if line_part else None)
        )
    return entries


def _baselined(finding: Finding, baseline: list[tuple[str, str, int | None]]) -> bool:
    path, _, line = finding.locus.partition(":")
    for rule, b_path, b_line in baseline:
        if rule != finding.rule:
            continue
        if not (path == b_path or path.endswith("/" + b_path)):
            continue
        if b_line is None or str(b_line) == line:
            return True
    return False


def lint_paths(
    paths: list[str | Path],
    baseline: str | Path | None = None,
    root: str | Path | None = None,
) -> AnalysisReport:
    """Lint every ``.py`` file under *paths*; loci are relative to *root*
    (default: the current directory) when possible."""
    rootp = Path(root) if root is not None else Path.cwd()
    report = AnalysisReport(subject="detlint")
    waivers = load_baseline(baseline) if baseline else []
    for path in iter_python_files(paths):
        try:
            rel = str(path.resolve().relative_to(rootp.resolve()))
        except ValueError:
            rel = str(path)
        findings = lint_source(path.read_text(), rel)
        report.extend([f for f in findings if not _baselined(f, waivers)])
    return report


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - thin wrapper
    """``python -m repro.analysis.detlint PATH... [--baseline FILE]``"""
    import argparse
    import sys

    parser = argparse.ArgumentParser(prog="detlint", description=__doc__.split("\n")[0])
    parser.add_argument("paths", nargs="+")
    parser.add_argument("--baseline")
    parser.add_argument("--json", action="store_true")
    parser.add_argument("--strict", action="store_true",
                        help="treat warnings as fatal")
    args = parser.parse_args(argv)
    report = lint_paths(args.paths, baseline=args.baseline)
    print(report.to_json() if args.json else report.render_text(), file=sys.stdout)
    return report.exit_code(strict=args.strict)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
