"""Findings, severities, and report rendering for the static analyses.

Every pass in :mod:`repro.analysis` — the task-graph verifier and the
determinism linter — produces :class:`Finding` records collected into an
:class:`AnalysisReport`. A finding carries a stable rule id (``G...`` for
graph rules, ``D...`` for determinism rules; see ``docs/ANALYSIS.md``), a
severity, the locus it anchors to (a task, an arc, or a ``file:line``),
and a fix hint. The report renders as aligned text for the terminal or as
JSON for tooling, and maps onto process exit codes the way ``ruff`` and
friends do: errors are fatal, warnings are advisory unless ``--strict``.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad a finding is.

    - ERROR: the application cannot work as described — dispatch would
      fail at runtime (cycle, dangling arc, no feasible machine class).
    - WARNING: legal but suspicious — likely mis-annotation or a degraded
      mapping worth a look before burning cluster time.
    - INFO: observation only.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Sort key: most severe first."""
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True, slots=True)
class Finding:
    """One verifier or linter diagnostic.

    Attributes:
        rule: stable catalog id (``G001``, ``D002``, ...).
        severity: see :class:`Severity`.
        message: one-line statement of the defect.
        locus: where — ``task <name>``, ``arc <src>-><dst>``, or
            ``path:line`` for source findings.
        hint: how to fix (may be empty).
    """

    rule: str
    severity: Severity
    message: str
    locus: str = ""
    hint: str = ""

    def format(self) -> str:
        head = f"{self.severity.value:7s} {self.rule}"
        where = f" [{self.locus}]" if self.locus else ""
        tail = f"  (fix: {self.hint})" if self.hint else ""
        return f"{head}{where} {self.message}{tail}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "locus": self.locus,
            "hint": self.hint,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(
            rule=data["rule"],
            severity=Severity(data["severity"]),
            message=data["message"],
            locus=data.get("locus", ""),
            hint=data.get("hint", ""),
        )


@dataclass
class AnalysisReport:
    """An ordered collection of findings about one subject.

    Attributes:
        subject: what was analysed (graph name, path, ...).
        findings: accumulated diagnostics, kept in insertion order;
            :meth:`sorted_findings` orders by severity for presentation.
    """

    subject: str = ""
    findings: list[Finding] = field(default_factory=list)

    def add(
        self,
        rule: str,
        severity: Severity,
        message: str,
        locus: str = "",
        hint: str = "",
    ) -> Finding:
        finding = Finding(rule, severity, message, locus, hint)
        self.findings.append(finding)
        return finding

    def extend(self, findings: list[Finding]) -> None:
        self.findings.extend(findings)

    def merge(self, other: "AnalysisReport") -> None:
        self.findings.extend(other.findings)

    # -- queries ---------------------------------------------------------------

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """No error-severity findings (warnings allowed)."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """No findings at all."""
        return not self.findings

    def by_rule(self, rule: str) -> list[Finding]:
        return [f for f in self.findings if f.rule == rule]

    def sorted_findings(self) -> list[Finding]:
        return sorted(
            self.findings, key=lambda f: (f.severity.rank, f.rule, f.locus, f.message)
        )

    # -- rendering -------------------------------------------------------------

    def summary(self) -> str:
        n_err, n_warn = len(self.errors), len(self.warnings)
        what = self.subject or "analysis"
        if self.clean:
            return f"{what}: clean"
        return f"{what}: {n_err} error(s), {n_warn} warning(s)"

    def render_text(self) -> str:
        lines = [self.summary()]
        lines += [f"  {f.format()}" for f in self.sorted_findings()]
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "subject": self.subject,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "findings": [f.to_dict() for f in self.sorted_findings()],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def exit_code(self, strict: bool = False) -> int:
        """Process exit status: 1 on errors (or, with *strict*, on any
        finding), 0 on warnings-only or clean."""
        if self.errors or (strict and self.findings):
            return 1
        return 0
