"""Tie-shuffle confirmation harness — `repro sanitize`.

The HB sanitizer (:mod:`repro.analysis.hb`) reports *candidate* races:
conflicting shared-state accesses unordered by happens-before.  Some of
those are commutative by design (two counters incremented in either order).
This harness separates the two classes empirically:

1. run a scenario with the sanitizer attached and the historical tie order
   (``tie_shuffle=0``) — collect candidate races, live protocol-FSM
   findings, and the run's *outcome digest*;
2. re-run it several times with a seeded permutation of same-timestamp
   ties (:meth:`Simulator.set_tie_shuffle` — FIFO among events scheduled
   by the same parent is preserved, so the ``call_soon`` contract holds);
3. if any shuffled run crashes or produces a different outcome digest, the
   run's observable behaviour depends on how the kernel happened to order
   logically-concurrent events — every unsuppressed candidate race is
   classified **real** (ERROR); otherwise **benign** (WARNING).

The outcome digest deliberately covers only durable results (task
lifecycle, allocations, dispatches, fixture finals) with record *times*
dropped: a tie permutation legitimately reorders the log and re-deals
jittered retry draws without changing what the run computed, and those
artifacts must not convict a benign race.

Scenarios mirror the golden determinism gate
(``tests/test_determinism_golden.py``) plus ``injected-race``, a fixture
with a deliberately order-dependent pair of same-timestamp events that the
sanitizer must detect and this harness must classify digest-diverging —
the end-to-end self-test CI runs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from repro.analysis.hb import HBTracker
from repro.analysis.protocol import DEFAULT_FSMS, ProtocolFSM, check_records
from repro.analysis.report import AnalysisReport, Finding, Severity

#: Categories whose records count as durable run outcomes (prefix match).
OUTCOME_PREFIXES = (
    "task.",
    "sched.alloc",
    "runtime.dispatch",
    "race.",
    "app.",
)

#: Payload keys that are durable results.  Everything else — times,
#: makespans, latencies, retry/attempt counters, trace span numbering
#: (span ids and ``after`` tuples are minted in dispatch order) — is an
#: artifact of *when* events fired and legitimately varies under a tie
#: permutation without the run having computed anything different.
DURABLE_KEYS = frozenset({
    "task", "rank", "host", "incarnation", "app", "epoch", "state",
    "result", "x", "count", "src", "dst", "restored", "req_id", "machine",
})


def outcome_digest(log: Iterable) -> str:
    """SHA-256 over the *sorted* canonical outcome records of *log*.

    Order-independent (a multiset digest), time-free, and restricted to
    :data:`DURABLE_KEYS`, so two runs that compute the same results
    through differently-ordered event schedules digest identically, while
    a changed placement, extra incarnation, missing completion, or
    different final value diverges.
    """
    lines = sorted(
        "{}|{}|{}".format(
            record.category,
            record.source,
            ",".join(
                f"{k}={record.data[k]!r}"
                for k in sorted(record.data)
                if k in DURABLE_KEYS
            ),
        )
        for record in log
        if record.category.startswith(OUTCOME_PREFIXES)
    )
    digest = hashlib.sha256()
    for line in lines:
        digest.update(line.encode())
        digest.update(b"\n")
    return digest.hexdigest()


def shuffle_salt(seed: int, k: int) -> int:
    """The k-th deterministic tie-shuffle salt for *seed* (always > 0)."""
    return (((seed + 1) * 0x9E3779B9 + (k + 1) * 0x85EBCA6B) & 0x7FFFFFFF) | 1


# -- scenarios --------------------------------------------------------------


@dataclass(slots=True)
class ScenarioRun:
    """What one scenario execution hands back to the harness."""

    log: object  # EventLog
    hb: HBTracker | None = None
    protocol_findings: list[Finding] | None = None


def _vce_scenario(build: Callable, seed: int, backend: str, shards: int,
                  hb_sanitizer: bool, tie_shuffle: int) -> ScenarioRun:
    vce = build(seed, backend, shards, hb_sanitizer, tie_shuffle)
    protocol = (
        vce.protocol_monitor.findings() if vce.protocol_monitor is not None else None
    )
    return ScenarioRun(log=vce.sim.log, hb=vce.hb_tracker, protocol_findings=protocol)


def _randomdag(seed: int, backend: str, shards: int,
               hb_sanitizer: bool, tie_shuffle: int):
    from repro.core import VCEConfig, VirtualComputingEnvironment, workstation_cluster
    from repro.workloads import build_random_dag

    graph = build_random_dag(layers=8, width=8, seed=seed)
    vce = VirtualComputingEnvironment(
        workstation_cluster(4),
        VCEConfig(seed=seed, backend=backend, shards=shards,
                  hb_sanitizer=hb_sanitizer, tie_shuffle=tie_shuffle),
    ).boot()
    run = vce.submit(graph, class_map={node.name: None for node in graph})
    vce.run_to_completion(run, timeout=100_000.0)
    from repro.scheduler.execution_program import RunState

    if run.state is not RunState.DONE:
        raise RuntimeError(f"randomdag did not complete: {run.error}")
    return vce


def _chaos_mix(seed: int, backend: str, shards: int,
               hb_sanitizer: bool, tie_shuffle: int):
    from repro.core import VCEConfig, VirtualComputingEnvironment, heterogeneous_cluster
    from repro.migration.failover import FailoverConfig
    from repro.scheduler.execution_program import RunState
    from repro.workloads import WEATHER_SCRIPT, build_pipeline_graph, weather_programs

    config = VCEConfig(
        seed=seed, backend=backend, shards=shards,
        reliable_transport=True, failover=FailoverConfig(),
        hb_sanitizer=hb_sanitizer, tie_shuffle=tie_shuffle,
    )
    vce = VirtualComputingEnvironment(heterogeneous_cluster(), config).boot()
    vce.chaos("chaos-mix", seed=seed)
    runs = [
        vce.run_script(WEATHER_SCRIPT, weather_programs(), name="weather"),
        vce.submit(build_pipeline_graph(stages=4, stage_work=15.0, name="pipe")),
    ]
    for run in runs:
        vce.run_to_completion(run, timeout=2_000.0)
        if run.state is not RunState.DONE:
            raise RuntimeError(f"chaos-mix run did not complete: {run.error}")
    vce.run(until=vce.sim.now + 30.0)
    return vce


def _injected_race(seed: int, backend: str, shards: int,
                   hb_sanitizer: bool, tie_shuffle: int) -> ScenarioRun:
    """Deliberate scheduler race: two same-timestamp events, scheduled by
    *different* parent events, apply non-commutative updates (``x *= 2``
    vs ``x += 3``) to shared state and note them under rule R900.  The
    final value is emitted as a ``race.final`` outcome record, so any salt
    that permutes the tie diverges the outcome digest."""
    from repro.netsim.backend import create_simulator

    sim = create_simulator(seed, backend=backend, shards=shards)
    tracker = None
    if hb_sanitizer:
        tracker = HBTracker()
        sim.hb = tracker
    if tie_shuffle:
        sim.set_tie_shuffle(tie_shuffle)
    state = {"x": 1}

    def doubler() -> None:
        hb = sim.hb
        if hb is not None:
            hb.write("fixture:x", "R900", "injected.doubler")
        state["x"] *= 2

    def adder() -> None:
        hb = sim.hb
        if hb is not None:
            hb.write("fixture:x", "R900", "injected.adder")
        state["x"] += 3

    # each launcher is its own event, so the two racers have different
    # scheduling parents — exactly the ties the shuffle permutes
    sim.schedule_at(1.0, lambda: sim.schedule_at(2.0, doubler, host="a"), host="a")
    sim.schedule_at(1.0, lambda: sim.schedule_at(2.0, adder, host="b"), host="b")
    sim.schedule_at(3.0, lambda: sim.emit("race.final", "fixture", x=state["x"]))
    sim.run(until=5.0)
    return ScenarioRun(log=sim.log, hb=tracker)


@dataclass(frozen=True, slots=True)
class Scenario:
    name: str
    description: str
    run: Callable[..., ScenarioRun]


SCENARIOS: dict[str, Scenario] = {
    "randomdag": Scenario(
        "randomdag",
        "8x8 random DAG on a 4-workstation cluster (golden scenario)",
        lambda seed, backend, shards, hb, mix: _vce_scenario(
            _randomdag, seed, backend, shards, hb, mix
        ),
    ),
    "chaos-mix": Scenario(
        "chaos-mix",
        "weather + pipeline under the chaos-mix fault schedule with "
        "failover and reliable transport (golden scenario)",
        lambda seed, backend, shards, hb, mix: _vce_scenario(
            _chaos_mix, seed, backend, shards, hb, mix
        ),
    ),
    "injected-race": Scenario(
        "injected-race",
        "deliberately order-dependent same-timestamp pair (self-test: "
        "must be detected and classified digest-diverging)",
        _injected_race,
    ),
}


# -- orchestration ----------------------------------------------------------


@dataclass(slots=True)
class SanitizeResult:
    """Everything one sanitized scenario produced."""

    scenario: str
    backend: str
    seed: int
    report: AnalysisReport
    classification: str  # "real" | "benign" | "race-free"
    baseline_digest: str
    shuffle_runs: list[dict] = field(default_factory=list)
    races: int = 0
    suppressed: int = 0
    hb_stats: dict = field(default_factory=dict)

    @property
    def diverged(self) -> bool:
        return any(run["diverged"] for run in self.shuffle_runs)

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "backend": self.backend,
            "seed": self.seed,
            "classification": self.classification,
            "baseline_digest": self.baseline_digest,
            "shuffle_runs": self.shuffle_runs,
            "races": self.races,
            "suppressed": self.suppressed,
            "hb_stats": self.hb_stats,
            "report": self.report.to_dict(),
        }


def sanitize_scenario(
    name: str,
    seed: int = 3,
    backend: str = "serial",
    shards: int = 4,
    shuffles: int = 4,
    baseline: str | Path | None = None,
    fsms: tuple[ProtocolFSM, ...] = DEFAULT_FSMS,
) -> SanitizeResult:
    """Run scenario *name* through the baseline + tie-shuffle protocol.

    Returns a :class:`SanitizeResult` whose report carries the classified
    race findings and the protocol-conformance findings of the baseline
    run.  Suppressed races (``# hbrace: ok`` sites or *baseline* file) are
    counted but never reported, whatever their classification.
    """
    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise KeyError(
            f"unknown sanitize scenario {name!r} "
            f"(expected one of {', '.join(sorted(SCENARIOS))})"
        )
    base = scenario.run(seed, backend, shards, True, 0)
    base_digest = outcome_digest(base.log)
    protocol_findings = base.protocol_findings
    if protocol_findings is None:
        protocol_findings = check_records(list(base.log), fsms)

    shuffle_runs: list[dict] = []
    for k in range(shuffles):
        salt = shuffle_salt(seed, k)
        entry: dict = {"salt": salt}
        try:
            run_k = scenario.run(seed, backend, shards, False, salt)
        except Exception as exc:  # a crash under reorder is the strongest signal
            entry["error"] = repr(exc)
            entry["diverged"] = True
        else:
            digest = outcome_digest(run_k.log)
            entry["digest"] = digest
            entry["diverged"] = digest != base_digest
        shuffle_runs.append(entry)

    diverged = any(run["diverged"] for run in shuffle_runs)
    races = base.hb.races if base.hb is not None else []
    classification = (
        "race-free" if not races else ("real" if diverged else "benign")
    )
    for race in races:
        race.classification = "real" if diverged else "benign"

    report = AnalysisReport(subject=f"sanitize:{name}[{backend}]")
    suppressed = 0
    if base.hb is not None:
        findings, suppressed = base.hb.race_findings(baseline=baseline)
        report.extend(findings)
    report.extend(protocol_findings)
    if diverged and not races:
        # outcome changed under reorder but no instrumented site saw it:
        # coverage gap, worth a human look but not a hard failure
        report.add(
            "R000", Severity.WARNING,
            "outcome digest diverged under tie-shuffle but no instrumented "
            "access pair raced — an uninstrumented shared state is "
            "order-dependent",
            locus=f"scenario:{name}",
            hint="instrument the state the diverging records point at",
        )
    return SanitizeResult(
        scenario=name,
        backend=backend,
        seed=seed,
        report=report,
        classification=classification,
        baseline_digest=base_digest,
        shuffle_runs=shuffle_runs,
        races=len(races),
        suppressed=suppressed,
        hb_stats=base.hb.stats() if base.hb is not None else {},
    )
