"""Protocol FSM conformance — declarative state machines over replay logs.

The VCE's distributed protocols (daemon bidding round-trip, lease/epoch
failover handshake, task/channel lifecycle) are specified here as explicit
finite state machines and checked three ways:

- **dynamically** against any event log — a live run, a saved run directory
  (``repro lint --hb RUN_DIR``), or a replay — by feeding each record's
  category through the FSM instance keyed by its protocol identity
  (request id, ``app:task:rank``, ...);
- **live** via :class:`ProtocolMonitor`, an :class:`~repro.util.eventlog.
  EventLog` observer (observers never change what the log stores, so replay
  digests are unchanged) that also exports the
  ``analysis_protocol_violations_total`` counter;
- **statically** (rule ``P005``) by extending the PR 4 AST pass over the
  repository sources: every symbol in an FSM's alphabet must be produced by
  at least one reachable ``emit("<category>", ...)`` site, so the machines
  cannot silently drift from the code they specify.

Transition classes (see ``docs/ANALYSIS.md`` for the rule tables):

- *expected* transitions are silent;
- *tolerated* transitions are at-least-once / crash-overlap artifacts
  (requester retransmits after a leader loss, duplicate allocation replies,
  stale incarnations finishing after a lease-expiry redispatch).  They are
  reported as INFO, deduplicated, and never fail a run — on a lossy network
  they are legal behaviour, and the at-most-once guards (allocation epochs,
  ``runtime.stale_commit``) are the mechanism that absorbs them;
- any other ``(state, symbol)`` pair is a violation (ERROR): it cannot be
  produced by a correct implementation regardless of message loss, because
  the earlier record is emitted synchronously before the later one can
  exist (e.g. an allocation reply for a request id that no ``sched.request``
  record introduced, or a re-dispatch of an instance that was never
  stranded).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

from repro.analysis.report import AnalysisReport, Finding, Severity

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.kernel import Simulator
    from repro.telemetry.registry import MetricsRegistry
    from repro.util.eventlog import LogRecord


@dataclass(frozen=True)
class ProtocolFSM:
    """One declarative protocol state machine.

    Attributes:
        rule: stable finding id (``P001``...).
        name: short protocol name for messages.
        categories: event categories forming the FSM alphabet; a record
            whose category is not in the alphabet is ignored.
        start: initial state of every instance.
        accept: states an instance may legally end the run in; anything
            else is reported (once per FSM, aggregated) as INFO.
        transitions: ``(state, symbol) -> state`` for expected behaviour.
            Symbols are categories with the ``prefix.`` stripped.
        tolerated: ``(state, symbol) -> (state, note)`` for legal
            at-least-once artifacts, reported as deduplicated INFO.
        resync: ``symbol -> state`` applied after a violation so one bad
            record does not cascade into spurious follow-on violations.
        key: record → instance identity (None skips the record).
    """

    rule: str
    name: str
    categories: frozenset[str]
    start: str
    accept: frozenset[str]
    transitions: Mapping[tuple[str, str], str]
    tolerated: Mapping[tuple[str, str], tuple[str, str]] = field(default_factory=dict)
    resync: Mapping[str, str] = field(default_factory=dict)
    key: Callable[["LogRecord"], str | None] = lambda record: record.source

    def symbol(self, category: str) -> str:
        return category.split(".", 1)[1] if "." in category else category


def _req_key(record: "LogRecord") -> str | None:
    return record.data.get("req_id")


def _instance_key(record: "LogRecord") -> str | None:
    task = record.data.get("task")
    rank = record.data.get("rank")
    if task is None or rank is None:
        return None
    # runtime./recovery. records carry the app id as the record source;
    # task.* records carry it in data
    app = record.data.get("app", record.source)
    return f"{app}:{task}:{rank}"


#: P001 — daemon bidding round-trip (Figure 3, §5): request → disclose/bid
#: collection (flat or hierarchical cells) → alloc | alloc_error, with
#: aging-queue retries re-entering the round.
BIDDING_FSM = ProtocolFSM(
    rule="P001",
    name="bidding",
    categories=frozenset({
        "sched.request", "sched.delegate", "sched.cell_poll", "sched.cell_bids",
        "sched.cell_timeout", "sched.alloc", "sched.alloc_error", "sched.retry",
        "sched.reprioritized",
    }),
    start="idle",
    accept=frozenset({"idle", "resolved", "queued"}),
    transitions={
        ("idle", "request"): "collecting",
        # a request may be queued by the leader without starting a round
        # (no record is emitted for the enqueue itself)
        ("idle", "retry"): "idle",
        ("idle", "reprioritized"): "idle",
        ("collecting", "delegate"): "collecting",
        ("collecting", "cell_poll"): "collecting",
        ("collecting", "cell_bids"): "collecting",
        ("collecting", "cell_timeout"): "collecting",
        ("collecting", "alloc"): "resolved",
        ("collecting", "alloc_error"): "queued",
        ("queued", "retry"): "queued",
        ("queued", "reprioritized"): "queued",
        ("queued", "request"): "collecting",
        ("resolved", "reprioritized"): "resolved",
    },
    tolerated={
        # at-least-once artifacts: the requester retransmits after a leader
        # loss, so overlapping rounds / duplicate replies for one req_id are
        # legal; the requester drops all but the first AllocationReply
        ("collecting", "request"): ("collecting", "requester retransmit started an overlapping round"),
        ("collecting", "retry"): ("collecting", "queued retry raced an in-flight round"),
        ("resolved", "request"): ("collecting", "retransmit after a resolved round"),
        ("resolved", "retry"): ("resolved", "queued retry after a resolved round"),
        ("resolved", "alloc"): ("resolved", "duplicate allocation (requester keeps the first)"),
        ("resolved", "alloc_error"): ("resolved", "late alloc_error after a resolved round"),
        ("queued", "alloc"): ("resolved", "an earlier overlapping round resolved a queued request"),
        ("queued", "alloc_error"): ("queued", "repeat alloc_error for a queued request"),
        ("queued", "cell_poll"): ("queued", "late cell activity for a queued request"),
        ("queued", "cell_bids"): ("queued", "late cell activity for a queued request"),
        ("queued", "cell_timeout"): ("queued", "late cell activity for a queued request"),
        ("resolved", "cell_poll"): ("resolved", "late cell activity after resolution"),
        ("resolved", "cell_bids"): ("resolved", "late cell activity after resolution"),
        ("resolved", "cell_timeout"): ("resolved", "late cell activity after resolution"),
        ("collecting", "reprioritized"): ("collecting", "priority change raced an in-flight round"),
    },
    resync={"request": "collecting", "alloc": "resolved", "alloc_error": "queued"},
    key=_req_key,
)

#: P002 — lease/epoch failover handshake (PR 3): dispatch arms a lease;
#: expiry or a crash strands the record; a strand is re-dispatched under a
#: new allocation epoch; stale epochs must never commit.
FAILOVER_FSM = ProtocolFSM(
    rule="P002",
    name="failover",
    categories=frozenset({
        "runtime.dispatch", "runtime.stale_commit", "recovery.lease_expired",
        "recovery.strand", "recovery.redispatch", "recovery.gave_up",
    }),
    start="idle",
    accept=frozenset({"idle", "live", "dead"}),
    transitions={
        ("idle", "dispatch"): "live",
        ("live", "dispatch"): "live",
        ("live", "lease_expired"): "live",
        ("live", "strand"): "stranded",
        ("stranded", "strand"): "stranded",
        ("stranded", "lease_expired"): "stranded",
        ("stranded", "redispatch"): "stranded",
        ("stranded", "dispatch"): "live",
        ("live", "stale_commit"): "live",
        ("stranded", "stale_commit"): "stranded",
        ("dead", "stale_commit"): "dead",
        ("live", "gave_up"): "dead",
        ("stranded", "gave_up"): "dead",
    },
    tolerated={
        ("dead", "lease_expired"): ("dead", "in-flight lease check after giving up"),
        ("dead", "strand"): ("dead", "in-flight strand after giving up"),
    },
    resync={"dispatch": "live", "strand": "stranded", "redispatch": "stranded"},
    key=_instance_key,
)

#: P003 — task-instance / channel-endpoint lifecycle: start after dispatch,
#: suspend/resume pairing, a single terminal commit per incarnation.
LIFECYCLE_FSM = ProtocolFSM(
    rule="P003",
    name="lifecycle",
    categories=frozenset({
        "task.start", "task.checkpoint", "task.file_fetch", "task.suspend",
        "task.resume", "task.done", "task.failed", "task.killed",
        "task.host_crashed",
    }),
    start="idle",
    accept=frozenset({"idle", "done", "dead"}),
    transitions={
        ("idle", "start"): "running",
        ("running", "checkpoint"): "running",
        ("running", "file_fetch"): "running",
        ("running", "suspend"): "suspended",
        ("suspended", "resume"): "running",
        ("running", "done"): "done",
        ("running", "failed"): "dead",
        ("running", "killed"): "dead",
        ("running", "host_crashed"): "dead",
        ("suspended", "done"): "done",
        ("suspended", "failed"): "dead",
        ("suspended", "killed"): "dead",
        ("suspended", "host_crashed"): "dead",
        # a re-dispatched incarnation starts over
        ("done", "start"): "running",
        ("dead", "start"): "running",
    },
    tolerated={
        ("running", "start"): ("running", "new incarnation started while a stale one is still live"),
        ("running", "resume"): ("running", "resume without a logged suspend (migration restore)"),
        ("suspended", "suspend"): ("suspended", "double suspend (migration raced a crash)"),
        ("done", "done"): ("done", "duplicate terminal commit (stale-epoch guard absorbs it)"),
        ("done", "failed"): ("done", "stale incarnation failed after commit"),
        ("done", "killed"): ("done", "stale incarnation killed after commit"),
        ("done", "host_crashed"): ("done", "host crash after commit"),
        ("done", "suspend"): ("done", "suspension of an already-committed instance"),
        ("dead", "done"): ("dead", "stale incarnation finished after strand"),
        ("dead", "failed"): ("dead", "repeat failure of a dead incarnation"),
        ("dead", "killed"): ("dead", "repeat kill of a dead incarnation"),
        ("dead", "host_crashed"): ("dead", "host crash of a dead incarnation"),
        ("dead", "suspend"): ("dead", "suspension of a dead incarnation"),
    },
    resync={"start": "running", "done": "done", "failed": "dead", "killed": "dead"},
    key=_instance_key,
)

DEFAULT_FSMS: tuple[ProtocolFSM, ...] = (BIDDING_FSM, FAILOVER_FSM, LIFECYCLE_FSM)


# -- dynamic checking ------------------------------------------------------


class _FSMRun:
    """Live state of one FSM across all of its keyed instances."""

    __slots__ = ("fsm", "states", "violations", "tolerated_hits")

    def __init__(self, fsm: ProtocolFSM) -> None:
        self.fsm = fsm
        self.states: dict[str, str] = {}
        # (state, symbol) -> [count, example key, example time]
        self.violations: dict[tuple[str, str], list] = {}
        self.tolerated_hits: dict[tuple[str, str], list] = {}

    def feed(self, record: "LogRecord") -> bool:
        """Advance on *record*. Returns True when it was a violation."""
        fsm = self.fsm
        if record.category not in fsm.categories:
            return False
        key = fsm.key(record)
        if key is None:
            return False
        symbol = fsm.symbol(record.category)
        state = self.states.get(key, fsm.start)
        nxt = fsm.transitions.get((state, symbol))
        if nxt is not None:
            self.states[key] = nxt
            return False
        tolerated = fsm.tolerated.get((state, symbol))
        if tolerated is not None:
            self.states[key] = tolerated[0]
            hit = self.tolerated_hits.get((state, symbol))
            if hit is None:
                self.tolerated_hits[(state, symbol)] = [1, key, record.time]
            else:
                hit[0] += 1
            return False
        entry = self.violations.get((state, symbol))
        if entry is None:
            self.violations[(state, symbol)] = [1, key, record.time]
        else:
            entry[0] += 1
        self.states[key] = fsm.resync.get(symbol, state)
        return True

    def findings(self, include_end_states: bool = True) -> list[Finding]:
        fsm = self.fsm
        out: list[Finding] = []
        for (state, symbol), (count, key, time) in sorted(self.violations.items()):
            out.append(
                Finding(
                    fsm.rule, Severity.ERROR,
                    f"{fsm.name} protocol violation: symbol {symbol!r} is not "
                    f"legal in state {state!r} (seen {count}x; first: key "
                    f"{key!r} at t={time:g})",
                    locus=f"log:{fsm.name}",
                    hint="a correct implementation cannot emit this sequence; "
                         "check the handler that produced the record",
                )
            )
        for (state, symbol), (count, key, time) in sorted(self.tolerated_hits.items()):
            note = fsm.tolerated[(state, symbol)][1]
            out.append(
                Finding(
                    fsm.rule, Severity.INFO,
                    f"{fsm.name}: tolerated at-least-once artifact "
                    f"{symbol!r} in state {state!r} ({note}; seen {count}x, "
                    f"first: key {key!r} at t={time:g})",
                    locus=f"log:{fsm.name}",
                )
            )
        if include_end_states:
            stuck = sorted(
                (key, state) for key, state in self.states.items()
                if state not in fsm.accept
            )
            if stuck:
                sample = ", ".join(f"{k}={s}" for k, s in stuck[:4])
                out.append(
                    Finding(
                        fsm.rule, Severity.INFO,
                        f"{fsm.name}: {len(stuck)} instance(s) end in "
                        f"non-accepting states ({sample}"
                        f"{', ...' if len(stuck) > 4 else ''}) — expected for "
                        "truncated or faulted runs",
                        locus=f"log:{fsm.name}",
                    )
                )
        return out


def check_records(
    records: Iterable["LogRecord"],
    fsms: tuple[ProtocolFSM, ...] = DEFAULT_FSMS,
    include_end_states: bool = True,
) -> list[Finding]:
    """Run every FSM over *records* (in order) and collect findings."""
    runs = [_FSMRun(fsm) for fsm in fsms]
    for record in records:
        for run in runs:
            run.feed(record)
    findings: list[Finding] = []
    for run in runs:
        findings.extend(run.findings(include_end_states=include_end_states))
    return findings


class ProtocolMonitor:
    """Live FSM conformance as an event-log observer.

    Attaching an observer never changes what the log stores, so replay
    digests are byte-identical with the monitor on.  Violations increment
    the ``analysis_protocol_violations_total`` counter as they happen, so
    the control-plane dashboard surfaces them mid-run.
    """

    def __init__(
        self,
        sim: "Simulator",
        fsms: tuple[ProtocolFSM, ...] = DEFAULT_FSMS,
        telemetry: "MetricsRegistry | None" = None,
    ) -> None:
        self._runs = [_FSMRun(fsm) for fsm in fsms]
        self._sim = sim
        registry = telemetry if telemetry is not None else sim.telemetry
        self._m_violations = (
            registry.counter(
                "analysis_protocol_violations_total",
                "protocol FSM conformance violations",
            )
            if registry is not None
            else None
        )
        sim.log.add_observer(self._on_record)

    def _on_record(self, record: "LogRecord") -> None:
        for run in self._runs:
            if run.feed(record) and self._m_violations is not None:
                self._m_violations.inc()

    def detach(self) -> None:
        self._sim.log.remove_observer(self._on_record)

    @property
    def violations(self) -> int:
        return sum(
            count for run in self._runs
            for (count, _, _) in run.violations.values()
        )

    def findings(self, include_end_states: bool = True) -> list[Finding]:
        out: list[Finding] = []
        for run in self._runs:
            out.extend(run.findings(include_end_states=include_end_states))
        return out

    def report(self, subject: str = "protocol") -> AnalysisReport:
        report = AnalysisReport(subject=subject)
        report.extend(self.findings())
        return report


# -- static conformance (P005) ---------------------------------------------


def _emit_categories(tree: ast.AST) -> tuple[set[str], set[str]]:
    """All ``emit("<category>", ...)`` literals in *tree*.

    Returns ``(exact, prefixes)`` where *prefixes* covers f-string emits
    like ``emit(f"task.{state.value}", ...)`` as wildcard prefixes.
    """
    exact: set[str] = set()
    prefixes: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        fn = node.func
        name = fn.attr if isinstance(fn, ast.Attribute) else (
            fn.id if isinstance(fn, ast.Name) else ""
        )
        if name != "emit":
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            exact.add(first.value)
        elif isinstance(first, ast.JoinedStr) and first.values:
            head = first.values[0]
            if isinstance(head, ast.Constant) and isinstance(head.value, str):
                prefixes.add(head.value)
    return exact, prefixes


def check_protocol_sources(
    root: str | Path = "src/repro",
    fsms: tuple[ProtocolFSM, ...] = DEFAULT_FSMS,
) -> list[Finding]:
    """P005: statically verify every FSM alphabet symbol is producible.

    Extends the PR 4 AST pass over the repository sources: every category an
    FSM claims must be emitted by at least one source site (exactly or via
    an f-string prefix), i.e. every send/receive symbol in the declared
    machines is reachable from real code.  A dead alphabet entry means the
    FSM has drifted from the implementation — the conformance checks above
    would silently stop covering that part of the protocol.
    """
    rootp = Path(root)
    exact: set[str] = set()
    prefixes: set[str] = set()
    if rootp.is_file():
        files: list[Path] = [rootp]
    else:
        files = sorted(
            p for p in rootp.rglob("*.py") if "__pycache__" not in p.parts
        )
    for path in files:
        try:
            tree = ast.parse(path.read_text())
        except (SyntaxError, OSError):
            continue
        file_exact, file_prefixes = _emit_categories(tree)
        exact |= file_exact
        prefixes |= file_prefixes
    findings: list[Finding] = []
    for fsm in fsms:
        for category in sorted(fsm.categories):
            if category in exact:
                continue
            if any(category.startswith(prefix) for prefix in prefixes):
                continue
            findings.append(
                Finding(
                    "P005", Severity.ERROR,
                    f"FSM {fsm.name!r} ({fsm.rule}) claims category "
                    f"{category!r} but no emit site in {rootp} produces it "
                    "— the machine has drifted from the implementation",
                    locus=str(rootp),
                    hint="update the FSM alphabet or restore the emit site",
                )
            )
    return findings
