"""Happens-before race sanitizer — a TSan for the simulated VCE.

ROADMAP item 3 moves the scheduler, bidding, failover, and vMPI layers onto
a real network, where the kernel no longer serializes logically-concurrent
events into one global ``(time, seq)`` order.  Any code path that is only
correct because the serial heap happened to order two concurrent events is
a latent distributed-systems bug.  This module finds that class *before*
the transport seam goes real:

- :class:`HBTracker` receives the **schedule-parent tree** from the netsim
  backends (:mod:`repro.netsim.kernel`, :mod:`repro.netsim.sharded`): every
  scheduled event records the event that scheduled it.  In a discrete-event
  simulation every causal edge — message send→receive, timer create→fire,
  continuation/program order — *is* a schedule edge, so ancestry in this
  tree is exactly the happens-before relation.  Deliberately **not** an
  edge: two events merely committed back-to-back by the global heap order
  (same-host or cross-host).  That serialization is an artifact of the
  simulator and disappears on a real network, which is precisely the
  order-dependence this sanitizer exists to detect.

- Instrumented shared-state sites (daemon hosted/load caches, AgingQueue
  mutations, allocation-epoch commits, lease/strand bookkeeping, channel
  endpoint tables) call :meth:`HBTracker.read` / :meth:`HBTracker.write`
  with a variable key and a stable site name.  Two conflicting accesses
  (at least one write) to the same variable that are unordered by
  happens-before produce a race finding (rules ``R001``–``R0xx``, see
  ``docs/ANALYSIS.md``) carrying both event chains.

- ``# hbrace: ok(R001)`` on a site's source line suppresses its findings
  (same idiom as detlint), and detlint-style baseline files are honoured.
  The tie-shuffle harness (:mod:`repro.analysis.sanitize`) classifies the
  rest as *benign* (replay digests stable under same-timestamp permutation)
  or *real* (digest-diverging).

The tracker is a pure observer: it emits no events and draws no RNG, so
replay digests are byte-identical with it attached.  Race detection is
FastTrack-flavoured: per variable we keep the last write plus the reads
since the last fully-ordered write, so some historical pairs are forgotten
— a deliberate precision/memory trade-off — but an access ordered after
every prior conflicting access never reports (the property
``tests/test_hb_sanitizer.py`` pins with hypothesis).
"""

from __future__ import annotations

import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.analysis.detlint import load_baseline
from repro.analysis.report import AnalysisReport, Finding, Severity

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.registry import MetricsRegistry

#: Ancestor walks give up after this many parent hops and conservatively
#: report the pair as ordered (never a false positive, possibly a miss).
WALK_CAP = 4096

#: Reads remembered per variable since the last fully-ordered write.
_MAX_READS = 16

_SUPPRESS_RE = re.compile(r"#\s*hbrace:\s*ok\(([A-Za-z0-9_,\s]+)\)")

#: Race-rule catalog (rendered in docs/ANALYSIS.md).
RACE_RULES = {
    "R001": "AgingQueue mutation unordered with another queue access",
    "R002": "daemon hosted-count / load-cache access unordered with a writer",
    "R003": "allocation-epoch commit unordered with a conflicting epoch access",
    "R004": "lease/strand bookkeeping unordered with a conflicting access",
    "R005": "channel endpoint table access unordered with a rebind/attach",
    "R900": "injected-race fixture rule (tests and `repro sanitize injected-race`)",
}


@dataclass(frozen=True, slots=True)
class AccessSite:
    """One instrumented source location, identified by ``(rule, name)``.

    The locus is captured from the first call that creates the site, so a
    ``# hbrace: ok(R00x)`` comment on that source line suppresses it.
    """

    rule: str
    name: str
    path: str
    line: int

    @property
    def locus(self) -> str:
        return f"{self.path}:{self.line}"


@dataclass(slots=True)
class _VarState:
    write_node: int = -1  # -1: no write seen yet
    write_site: AccessSite | None = None
    reads: list[tuple[int, AccessSite]] = field(default_factory=list)


@dataclass(slots=True)
class Race:
    """One deduplicated race: a pair of conflicting, HB-unordered sites."""

    rule: str
    var: str  # example variable (first occurrence)
    site_a: AccessSite
    site_b: AccessSite
    node_a: int
    node_b: int
    kind: str  # "write/write" or "read/write"
    count: int = 1
    #: set by the tie-shuffle harness: "real", "benign", or None (unclassified)
    classification: str | None = None


def _rel(path: str) -> str:
    """Shorten an absolute module path to something report-friendly."""
    for anchor in ("src/", "tests/", "benchmarks/"):
        idx = path.find(anchor)
        if idx >= 0:
            return path[idx:]
    return path


class HBTracker:
    """Happens-before tracking plus lightweight race detection.

    The netsim backends feed the schedule-parent tree through three hooks
    (inlined on their hot paths; any future backend must honour the same
    contract):

    - on schedule: ``node = len(hb._parents); hb._parents.append(hb._current);
      hb._node_hosts.append(host)`` and store ``node`` on the entry;
    - on fire: ``hb._current = entry.hb`` before the callback runs.

    :meth:`on_schedule` / :meth:`on_fire` are the equivalent method forms.
    Node 0 is the root: everything done outside any event (setup code) is
    ordered before everything else.
    """

    def __init__(
        self,
        telemetry: "MetricsRegistry | None" = None,
        walk_cap: int = WALK_CAP,
    ) -> None:
        self._parents: list[int] = [0]
        self._node_hosts: list[str | None] = [None]
        self._current = 0
        self._vars: dict[str, _VarState] = {}
        self._sites: dict[tuple[str, str], AccessSite] = {}
        self._races: dict[tuple[str, str, str], Race] = {}
        self.walk_cap = walk_cap
        self.walk_cap_hits = 0
        self.notes = 0
        self._m_races = (
            telemetry.counter(
                "analysis_races_detected_total",
                "distinct HB-unordered conflicting access pairs",
            )
            if telemetry is not None
            else None
        )

    # -- backend hooks -----------------------------------------------------

    def on_schedule(self, host: str | None = None) -> int:
        """Allocate the tracker node for a newly scheduled event."""
        node = len(self._parents)
        self._parents.append(self._current)
        self._node_hosts.append(host)
        return node

    def on_fire(self, node: int) -> None:
        """Enter the context of *node* (its callback is about to run)."""
        self._current = node

    @property
    def nodes(self) -> int:
        return len(self._parents)

    @property
    def current_node(self) -> int:
        return self._current

    # -- happens-before query ----------------------------------------------

    def ordered(self, a: int, b: int) -> bool:
        """True when one of the events happens-before the other (or a == b).

        Ancestor ids are always smaller than descendant ids, so this walks
        the larger node's parent chain down past the smaller one.  Walks are
        capped at ``walk_cap`` hops; a capped walk counts as ordered
        (conservative — never a false race).
        """
        if a == b:
            return True
        if a > b:
            a, b = b, a
        parents = self._parents
        cap = self.walk_cap
        n = b
        while n > a:
            cap -= 1
            if cap <= 0:
                self.walk_cap_hits += 1
                return True
            n = parents[n]
        return n == a

    # -- access tagging ----------------------------------------------------

    def _site(self, rule: str, name: str) -> AccessSite:
        key = (rule, name)
        site = self._sites.get(key)
        if site is None:
            # first use of this (rule, name): the caller's caller is the
            # instrumented source line — captured once, so per-access cost
            # stays a dict hit
            frame = sys._getframe(2)
            site = AccessSite(rule, name, _rel(frame.f_code.co_filename), frame.f_lineno)
            self._sites[key] = site
        return site

    def write(self, var: str, rule: str, site_name: str) -> None:
        """Note a write to shared variable *var* from the current event."""
        self.notes += 1
        site = self._site(rule, site_name)
        cur = self._current
        state = self._vars.get(var)
        if state is None:
            self._vars[var] = _VarState(cur, site)
            return
        if state.write_node >= 0 and not self.ordered(state.write_node, cur):
            self._race(var, state.write_site, state.write_node, site, cur, "write/write")
        reads = state.reads
        if reads:
            all_ordered = True
            for node, read_site in reads:
                if not self.ordered(node, cur):
                    self._race(var, read_site, node, site, cur, "read/write")
                    all_ordered = False
            if all_ordered:
                # every remembered read is ordered before this write: the
                # write now dominates them for any future conflict
                reads.clear()
        state.write_node = cur
        state.write_site = site

    def read(self, var: str, rule: str, site_name: str) -> None:
        """Note a read of shared variable *var* from the current event."""
        self.notes += 1
        site = self._site(rule, site_name)
        cur = self._current
        state = self._vars.get(var)
        if state is None:
            state = self._vars[var] = _VarState()
        elif state.write_node >= 0 and not self.ordered(state.write_node, cur):
            self._race(var, state.write_site, state.write_node, site, cur, "read/write")
        reads = state.reads
        for index, (node, read_site) in enumerate(reads):
            if read_site is site and self.ordered(node, cur):
                reads[index] = (cur, site)
                return
        if len(reads) >= _MAX_READS:
            del reads[0]  # bounded memory; dropping a read can only miss races
        reads.append((cur, site))

    def _race(
        self,
        var: str,
        site_a: AccessSite | None,
        node_a: int,
        site_b: AccessSite,
        node_b: int,
        kind: str,
    ) -> None:
        assert site_a is not None
        locus_a, locus_b = sorted((site_a.locus, site_b.locus))
        key = (site_b.rule, locus_a, locus_b)
        race = self._races.get(key)
        if race is not None:
            race.count += 1
            return
        self._races[key] = Race(
            rule=site_b.rule, var=var, site_a=site_a, site_b=site_b,
            node_a=node_a, node_b=node_b, kind=kind,
        )
        if self._m_races is not None:
            self._m_races.inc()

    # -- reporting ---------------------------------------------------------

    def chain(self, node: int, limit: int = 6) -> str:
        """Render a node's event chain as ``#id@host < ... < #id@host``."""
        hops: list[str] = []
        parents, hosts = self._parents, self._node_hosts
        n = node
        while len(hops) < limit:
            host = hosts[n] if n < len(hosts) else None
            hops.append(f"#{n}@{host or '-'}")
            if n == 0:
                break
            n = parents[n]
        else:
            hops.append("...")
        return " < ".join(reversed(hops))

    @property
    def races(self) -> list[Race]:
        return list(self._races.values())

    def race_findings(
        self,
        baseline: str | Path | None = None,
    ) -> tuple[list[Finding], int]:
        """Render races as report findings, applying ``# hbrace: ok`` site
        suppressions and an optional detlint-format baseline file.

        Returns ``(findings, suppressed_count)``.  Unclassified and benign
        races are WARNINGs; races the tie-shuffle harness classified as
        *real* (digest-diverging) are ERRORs.
        """
        waivers = load_baseline(baseline) if baseline else []
        findings: list[Finding] = []
        suppressed = 0
        for race in sorted(
            self._races.values(), key=lambda r: (r.rule, r.site_a.locus, r.site_b.locus)
        ):
            if (
                _site_suppressed(race.site_a, race.rule)
                or _site_suppressed(race.site_b, race.rule)
                or _race_baselined(race, waivers)
            ):
                suppressed += 1
                continue
            tag = {
                "real": "digest-diverging under tie-shuffle",
                "benign": "digest-stable under tie-shuffle",
                None: "unclassified",
            }[race.classification]
            severity = Severity.ERROR if race.classification == "real" else Severity.WARNING
            findings.append(
                Finding(
                    race.rule,
                    severity,
                    f"{race.kind} race on {race.var!r} ({tag}, seen {race.count}x): "
                    f"{race.site_a.name} [{race.site_a.locus}] chain "
                    f"{self.chain(race.node_a)} is unordered with "
                    f"{race.site_b.name} [{race.site_b.locus}] chain "
                    f"{self.chain(race.node_b)}",
                    locus=race.site_b.locus,
                    hint=f"order the accesses causally, or suppress with "
                         f"'# hbrace: ok({race.rule})' if commutative by design",
                )
            )
        return findings, suppressed

    def report(
        self, subject: str = "hb-sanitizer", baseline: str | Path | None = None
    ) -> AnalysisReport:
        report = AnalysisReport(subject=subject)
        findings, _ = self.race_findings(baseline=baseline)
        report.extend(findings)
        return report

    def stats(self) -> dict:
        return {
            "nodes": len(self._parents),
            "notes": self.notes,
            "variables": len(self._vars),
            "sites": len(self._sites),
            "races": len(self._races),
            "walk_cap_hits": self.walk_cap_hits,
        }


# -- suppression helpers ---------------------------------------------------

_LINE_CACHE: dict[str, list[str]] = {}


def _source_line(path: str, line: int) -> str:
    lines = _LINE_CACHE.get(path)
    if lines is None:
        candidates = [Path(path)]
        if not candidates[0].is_absolute():
            candidates.append(Path.cwd() / path)
        for candidate in candidates:
            try:
                lines = candidate.read_text().splitlines()
                break
            except OSError:
                lines = []
        _LINE_CACHE[path] = lines or []
        lines = _LINE_CACHE[path]
    if 1 <= line <= len(lines):
        return lines[line - 1]
    return ""


def _site_suppressed(site: AccessSite, rule: str) -> bool:
    match = _SUPPRESS_RE.search(_source_line(site.path, site.line))
    if not match:
        return False
    rules = {r.strip().upper() for r in match.group(1).split(",")}
    return rule.upper() in rules


def _race_baselined(race: Race, waivers: list[tuple[str, str, int | None]]) -> bool:
    for site in (race.site_a, race.site_b):
        for rule, b_path, b_line in waivers:
            if rule != race.rule:
                continue
            if not (site.path == b_path or site.path.endswith("/" + b_path)):
                continue
            if b_line is None or b_line == site.line:
                return True
    return False
