"""Class-to-machine feasibility: the verifier's EXM-facing pass.

The compilation manager maps each task's problem-architecture class onto
preference-ordered machine classes, intersected with the machines actually
registered and the compilers actually available (§4.1). This pass runs
that mapping *statically*, before anticipatory compilation or bidding:

- G020 infeasible-class (ERROR): no machine class in this VCE can run the
  task at all — dispatch is guaranteed to fail.
- G021 degraded-mapping (WARNING): the task runs, but not on the class its
  problem architecture prefers (e.g. a SYNCHRONOUS task with no SIMD or
  vector machine present falls back to MIMD/workstations).
- G022 insufficient-instances (WARNING): fewer machines exist across all
  feasible classes than the task wants instances — the bidding protocol
  will come up short and queue or fail the request.

Tasks marked ``local`` run on the user's workstation and are exempt; tasks
already flagged G010/G011 (undesigned/uncoded) are skipped because the
mapping is undefined for them.
"""

from __future__ import annotations

from repro.analysis.report import Finding, Severity
from repro.compilation.classes import candidate_classes
from repro.compilation.manager import CompilationManager
from repro.taskgraph import TaskGraph


class FeasibilityPass:
    """Callable pass closing over a :class:`CompilationManager` (and,
    through it, the machine database and compiler registry)."""

    def __init__(self, compilation: CompilationManager) -> None:
        self.compilation = compilation

    def __call__(self, graph: TaskGraph) -> list[Finding]:
        out: list[Finding] = []
        db = self.compilation.database
        for node in graph:
            if node.local or node.problem_class is None or node.language is None:
                continue
            locus = f"task {node.name}"
            feasible = self.compilation.feasible_classes(node)
            preference = candidate_classes(node.problem_class, self.compilation.class_map)
            if not feasible:
                present = sorted(c.value for c in db.classes_present())
                out.append(
                    Finding(
                        "G020",
                        Severity.ERROR,
                        f"task {node.name!r} ({node.problem_class.value}, "
                        f"{node.language}) maps to no machine class in this VCE "
                        f"(cluster has: {', '.join(present) or 'nothing'})",
                        locus=locus,
                        hint="add machines of a suitable class, relax hardware "
                        "requirements, or pick a language with wider compiler "
                        "coverage",
                    )
                )
                continue
            if preference and feasible[0] is not preference[0]:
                out.append(
                    Finding(
                        "G021",
                        Severity.WARNING,
                        f"task {node.name!r} prefers {preference[0].value} but "
                        f"this VCE only offers {feasible[0].value} "
                        "(degraded mapping)",
                        locus=locus,
                        hint=f"add a {preference[0].value} machine to restore "
                        "the preferred mapping",
                    )
                )
            capacity = sum(len(db.machines_in_class(c)) for c in feasible)
            if node.instances > capacity:
                out.append(
                    Finding(
                        "G022",
                        Severity.WARNING,
                        f"task {node.name!r} wants {node.instances} instances "
                        f"but only {capacity} feasible machine(s) exist",
                        locus=locus,
                        hint="lower instances, widen feasibility, or submit "
                        "with queue_if_insufficient=True",
                    )
                )
        return out
