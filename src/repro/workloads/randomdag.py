"""Seeded random layered DAGs for scheduler stress tests."""

from __future__ import annotations

import random

from repro.sdm import ProblemSpecification
from repro.taskgraph import ProblemClass, TaskGraph
from repro.vmpi.api import Compute


def build_random_dag(
    layers: int = 4,
    width: int = 4,
    seed: int = 0,
    min_work: float = 2.0,
    max_work: float = 20.0,
    edge_prob: float = 0.4,
    volume: int = 100_000,
    name: str | None = None,
) -> TaskGraph:
    """A layered random DAG: every non-root task has at least one parent in
    the previous layer, every non-leaf task at least one child in the next;
    extra edges appear with *edge_prob*."""
    rng = random.Random(seed)
    spec = ProblemSpecification(name or f"rdag-{seed}")
    grid: list[list[str]] = []
    for layer in range(layers):
        row = []
        for i in range(rng.randint(1, width)):
            task = f"L{layer}T{i}"
            spec.task(task, work=rng.uniform(min_work, max_work))
            row.append(task)
        grid.append(row)
    for layer in range(1, layers):
        wired: set[str] = set()
        for task in grid[layer]:
            parents = [p for p in grid[layer - 1] if rng.random() < edge_prob]
            if not parents:
                parents = [rng.choice(grid[layer - 1])]
            for parent in parents:
                spec.flow(parent, task, volume=volume)
                wired.add(parent)
        # A childless task in an inner layer (an orphan, if it is in layer
        # 0) would make the "random DAG" not a connected pipeline at all;
        # give every unpicked parent one child so the verifier stays clean.
        for parent in grid[layer - 1]:
            if parent not in wired:
                spec.flow(parent, rng.choice(grid[layer]), volume=volume)
    graph = spec.build()
    for node in graph:
        node.problem_class = ProblemClass.ASYNCHRONOUS
        node.language = "py"
        work = node.work

        def program(ctx, w=work):
            yield Compute(w)
            return w

        node.program = program
    return graph
