"""Tenant populations and per-tenant applications for the soak generator.

:func:`build_population` draws a deterministic mix of user populations —
heavy interactive tenants, steady line-of-business tenants, and bursty
low-priority batch tenants — from one seed, so a soak run is fully
described by ``(population seed, soak config)``.  :func:`tenant_app`
materializes one application for a tenant: a fan of independent compute
instances (the dominant shape in the paper's motivating workloads and the
cheapest per-instance event footprint, which is what lets a soak reach
100k+ live instances).
"""

from __future__ import annotations

import random

from repro.core.tenancy import TenantSpec
from repro.sdm import ProblemSpecification
from repro.taskgraph import ProblemClass, TaskGraph
from repro.vmpi.api import Compute

#: (weight, kind) mix of tenant archetypes in a generated population.
_ARCHETYPES = (
    (0.2, "heavy"),
    (0.6, "steady"),
    (0.2, "batch"),
)


def build_population(
    n: int,
    seed: int = 0,
    mean_quota: int = 600,
    base_rate: float = 0.05,
    instances: tuple[int, int] = (8, 24),
    work: tuple[float, float] = (40.0, 120.0),
) -> tuple[TenantSpec, ...]:
    """*n* tenant populations drawn deterministically from *seed*.

    Archetypes: ``heavy`` tenants arrive ~4x faster with ~2.5x the quota
    and elevated priority; ``steady`` tenants take the baseline; ``batch``
    tenants arrive in bursts at negative priority with a tight quota — the
    population whose admissions exercise aging (they must wait, but never
    starve).
    """
    rng = random.Random(seed)
    out: list[TenantSpec] = []
    for i in range(n):
        roll = rng.random()
        acc = 0.0
        kind = _ARCHETYPES[-1][1]
        for weight, name in _ARCHETYPES:
            acc += weight
            if roll < acc:
                kind = name
                break
        lo, hi = instances
        if kind == "heavy":
            spec = TenantSpec(
                name=f"t{i:03d}-heavy",
                quota=max(hi, int(mean_quota * rng.uniform(2.0, 3.0))),
                rate=base_rate * rng.uniform(3.0, 5.0),
                arrival="poisson",
                priority=1.0,
                instances=(lo, hi),
                work=work,
            )
        elif kind == "batch":
            spec = TenantSpec(
                name=f"t{i:03d}-batch",
                quota=max(hi, int(mean_quota * rng.uniform(0.4, 0.8))),
                rate=base_rate * rng.uniform(1.0, 2.0),
                arrival="bursty",
                burst=rng.randint(3, 8),
                priority=-1.0,
                instances=(lo, hi),
                work=work,
            )
        else:
            spec = TenantSpec(
                name=f"t{i:03d}-steady",
                quota=max(hi, int(mean_quota * rng.uniform(0.8, 1.4))),
                rate=base_rate * rng.uniform(0.8, 1.5),
                arrival="poisson",
                priority=0.0,
                instances=(lo, hi),
                work=work,
            )
        out.append(spec)
    return tuple(out)


def arrival_times(
    tenant: TenantSpec, count: int, rng: random.Random
) -> list[float]:
    """The first *count* application arrival offsets for one tenant.

    Poisson tenants draw exponential inter-arrival gaps at ``rate``;
    bursty tenants draw exponential gaps between bursts (rate scaled so
    the mean app rate matches) and submit ``burst`` apps 10ms apart.
    """
    times: list[float] = []
    t = 0.0
    if tenant.arrival == "poisson":
        while len(times) < count:
            t += rng.expovariate(tenant.rate)
            times.append(t)
        return times
    while len(times) < count:
        t += rng.expovariate(tenant.rate / tenant.burst)
        for k in range(tenant.burst):
            times.append(t + 0.01 * k)
    return times[:count]


def tenant_app(
    tenant: TenantSpec, index: int, rng: random.Random
) -> tuple[TaskGraph, dict[str, tuple[int, int]]]:
    """One application for *tenant*: a fan of independent Compute instances.

    Returns ``(graph, ranges)``: the graph's fixed count is the drawn
    maximum *k*, while ranges relax the minimum to ``max(1, k // 2)`` so
    placement takes every machine the bidding round offers without failing
    when a thin cell bids short (the hierarchy escalates until the minimum
    is covered).
    """
    k = rng.randint(*tenant.instances)
    w = rng.uniform(*tenant.work)
    spec = ProblemSpecification(f"{tenant.name}-a{index}")
    spec.task("work", work=w, instances=k)
    graph = spec.build()
    node = graph.task("work")
    node.problem_class = ProblemClass.ASYNCHRONOUS
    node.language = "py"

    def program(ctx, _w=w):
        yield Compute(_w)
        return _w

    node.program = program
    return graph, {"work": (max(1, k // 2), k)}
