"""Synthetic workloads.

The paper's programs (``/apps/snow/*.vce``) are not available, so each
workload here is a synthetic application with the same *structure*: the §5
weather-forecasting pipeline, the Monte Carlo farms and batch jobs the
§4.4 literature review cites, generic pipelines, seeded random DAGs, and
parameter sweeps.
"""

from repro.workloads.weather import (
    WEATHER_SCRIPT,
    build_weather_graph,
    weather_class_map,
    weather_programs,
)
from repro.workloads.montecarlo import build_monte_carlo_graph
from repro.workloads.pipeline import build_diamond_graph, build_pipeline_graph
from repro.workloads.randomdag import build_random_dag
from repro.workloads.stencil import build_stencil_graph, heat_reference
from repro.workloads.sweep import build_sweep_graph
from repro.workloads.tenants import arrival_times, build_population, tenant_app

__all__ = [
    "build_stencil_graph",
    "heat_reference",
    "WEATHER_SCRIPT",
    "build_weather_graph",
    "weather_programs",
    "weather_class_map",
    "build_monte_carlo_graph",
    "build_pipeline_graph",
    "build_diamond_graph",
    "build_random_dag",
    "build_sweep_graph",
    "build_population",
    "arrival_times",
    "tenant_app",
]
