"""Pipeline and diamond DAG workloads.

Dependency-structured applications — the shape on which the §4.3 ripple
effect bites: suspending one stage delays every downstream stage.
"""

from __future__ import annotations

from repro.sdm import ProblemSpecification
from repro.taskgraph import ProblemClass, TaskGraph
from repro.vmpi.api import Checkpoint, Compute


def _stage_program(work: float, checkpoint_every: float = 5.0):
    def program(ctx):
        done = ctx.restored_state or 0.0
        while done < work:
            chunk = min(checkpoint_every, work - done)
            yield Compute(chunk)
            done += chunk
            yield Checkpoint(done, size=1000)
        return done

    return program


def build_pipeline_graph(
    stages: int = 5,
    stage_work: float = 10.0,
    volume: int = 1_000_000,
    name: str = "pipeline",
) -> TaskGraph:
    """A linear chain: s0 → s1 → ... → s(n-1) with DATA arcs."""
    spec = ProblemSpecification(name)
    for i in range(stages):
        spec.task(f"s{i}", f"stage {i}", work=stage_work)
    for i in range(stages - 1):
        spec.flow(f"s{i}", f"s{i + 1}", volume=volume)
    graph = spec.build()
    for node in graph:
        node.problem_class = ProblemClass.ASYNCHRONOUS
        node.language = "py"
        node.program = _stage_program(stage_work)
    return graph


def build_diamond_graph(
    width: int = 3,
    source_work: float = 5.0,
    branch_work: float = 20.0,
    sink_work: float = 5.0,
    name: str = "diamond",
) -> TaskGraph:
    """source → {b0..b(width-1)} → sink: fan-out/fan-in parallelism."""
    spec = ProblemSpecification(name).task("source", work=source_work)
    for i in range(width):
        spec.task(f"b{i}", work=branch_work)
        spec.flow("source", f"b{i}", volume=100_000)
    spec.task("sink", work=sink_work)
    for i in range(width):
        spec.flow(f"b{i}", "sink", volume=100_000)
    graph = spec.build()
    works = {"source": source_work, "sink": sink_work}
    for node in graph:
        node.problem_class = ProblemClass.ASYNCHRONOUS
        node.language = "py"
        node.program = _stage_program(works.get(node.name, branch_work))
    return graph
