"""Parameter sweeps: many independent single-task jobs.

The free-parallelism workload (§4.5): independent work that soaks up any
number of idle machines regardless of per-machine efficiency.
"""

from __future__ import annotations

from repro.sdm import ProblemSpecification
from repro.taskgraph import ExecutionHints, ProblemClass, TaskGraph
from repro.vmpi.api import Compute


def build_sweep_graph(
    points: int = 8,
    work_per_point: float = 10.0,
    name: str = "sweep",
) -> TaskGraph:
    """One multi-instance task, one instance per sweep point."""

    def program(ctx):
        yield Compute(work_per_point)
        return {"point": ctx.rank, "value": ctx.rank * 1.5}

    spec = ProblemSpecification(name).task(
        "point",
        "evaluate one parameter point",
        work=work_per_point,
        instances=points,
        hints=ExecutionHints(migratable=True, checkpointable=False),
    )
    graph = spec.build()
    node = graph.task("point")
    node.problem_class = ProblemClass.ASYNCHRONOUS
    node.language = "py"
    node.program = program
    return graph
