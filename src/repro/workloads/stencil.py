"""Iterative stencil — the canonical *synchronous* problem architecture.

Fox's synchronous class is lockstep data parallelism: every rank owns a
strip of a grid and, each iteration, exchanges halo rows with its left and
right neighbours before computing. This is the problem shape the design
stage maps to SIMD machines.

The computation is a real 1-D heat diffusion on numpy arrays — results
are checked against a single-rank run in the tests — while the compute
*time* per iteration is modelled through ``Compute``.
"""

from __future__ import annotations

import numpy as np

from repro.sdm import ProblemSpecification
from repro.taskgraph import ProblemClass, TaskGraph
from repro.vmpi.api import Compute, Recv, Send
from repro.vmpi.collectives import gather


def heat_reference(cells: int, iterations: int, alpha: float = 0.25) -> np.ndarray:
    """Single-owner reference solution (fixed 0 boundaries, spike init)."""
    grid = np.zeros(cells)
    grid[cells // 2] = 100.0
    for _ in range(iterations):
        padded = np.pad(grid, 1)
        grid = grid + alpha * (padded[:-2] - 2 * grid + padded[2:])
    return grid


def build_stencil_graph(
    ranks: int = 4,
    cells: int = 64,
    iterations: int = 10,
    work_per_cell_iter: float = 0.001,
    alpha: float = 0.25,
    name: str = "stencil",
) -> TaskGraph:
    """Distributed heat equation on *ranks* strips with halo exchange.

    Rank 0's result is the full reconstructed grid (a numpy array);
    other ranks return their strip sums.
    """
    if cells % ranks != 0:
        raise ValueError("cells must divide evenly across ranks")
    strip = cells // ranks

    def program(ctx):
        me, p = ctx.rank, ctx.size
        grid = np.zeros(strip)
        owner_of_spike, offset = divmod(cells // 2, strip)
        if me == owner_of_spike:
            grid[offset] = 100.0
        for _ in range(iterations):
            # halo exchange with neighbours (lockstep, every iteration)
            left_halo = 0.0
            right_halo = 0.0
            if me > 0:
                yield Send(dst=me - 1, data=float(grid[0]), tag="halo-l", size=16)
            if me < p - 1:
                yield Send(dst=me + 1, data=float(grid[-1]), tag="halo-r", size=16)
            if me < p - 1:
                _, left_of_right = yield Recv(src=me + 1, tag="halo-l")
                right_halo = left_of_right
            if me > 0:
                _, right_of_left = yield Recv(src=me - 1, tag="halo-r")
                left_halo = right_of_left
            padded = np.concatenate(([left_halo], grid, [right_halo]))
            yield Compute(strip * work_per_cell_iter)
            grid = grid + alpha * (padded[:-2] - 2 * grid + padded[2:])
        strips = yield from gather(ctx, grid.tolist(), root=0, size=strip * 8)
        if me == 0:
            return np.concatenate([np.asarray(s) for s in strips])
        return float(grid.sum())

    spec = ProblemSpecification(name).task(
        "grid",
        "iterative heat diffusion",
        work=strip * iterations * work_per_cell_iter,
        instances=ranks,
        requirements={"lockstep": True},
    )
    graph = spec.build()
    node = graph.task("grid")
    node.problem_class = ProblemClass.SYNCHRONOUS
    node.language = "hpf"
    node.program = program
    return graph
