"""Monte Carlo farm — the classic migratable workload.

§4.4 notes that load-balancing work is usually validated on "tasks that
are easily migrated (like parallel Monte Carlo simulations)". This farm
estimates π: each worker draws its share of samples (modelled compute),
then the ranks ``allreduce`` their hit counts.

Each worker checkpoints between batches, so every §4.4 migration scheme
applies to it.
"""

from __future__ import annotations

import random

from repro.sdm import ProblemSpecification
from repro.taskgraph import ExecutionHints, ProblemClass, TaskGraph
from repro.vmpi.api import Checkpoint, Compute
from repro.vmpi.collectives import allreduce


def build_monte_carlo_graph(
    workers: int = 4,
    samples_per_worker: int = 100_000,
    batches: int = 10,
    work_per_batch: float = 2.0,
    redundancy: int = 1,
    seed: int = 0,
    sync_every_batch: bool = False,
    sync_size: int = 256,
) -> TaskGraph:
    """π-estimation farm: *workers* ranks, checkpointing every batch.

    With ``sync_every_batch`` the ranks allreduce their running estimate
    after every batch (periodic result combining) — the communication that
    erodes parallel efficiency as the farm widens, exercised by the E7
    free-parallelism benchmark.
    """

    def worker(ctx):
        rng = random.Random(seed * 1_000_003 + ctx.rank)
        state = ctx.restored_state or {"batch": 0, "hits": 0}
        batch, hits = state["batch"], state["hits"]
        per_batch = samples_per_worker // batches
        while batch < batches:
            yield Compute(work_per_batch)
            hits += sum(
                1
                for _ in range(per_batch)
                if rng.random() ** 2 + rng.random() ** 2 <= 1.0
            )
            batch += 1
            yield Checkpoint({"batch": batch, "hits": hits}, size=64)
            if sync_every_batch and ctx.size > 1:
                yield from allreduce(ctx, hits, op=sum, size=sync_size)
        total_hits = yield from allreduce(ctx, hits, op=sum)
        return 4.0 * total_hits / (samples_per_worker // batches * batches * ctx.size)

    spec = ProblemSpecification("montecarlo").task(
        "worker",
        "estimate pi by sampling",
        work=work_per_batch * batches,
        instances=workers,
        hints=ExecutionHints(checkpointable=True, migratable=True, redundancy=redundancy),
    )
    graph = spec.build()
    node = graph.task("worker")
    node.problem_class = ProblemClass.LOOSELY_SYNCHRONOUS
    node.language = "py"
    node.program = worker
    return graph
