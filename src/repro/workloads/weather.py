"""The §5 weather-forecasting application.

"The script shown above corresponds to a weather forecasting application.
The first line of the script requests two instantiations of a data
collector program on machines with asynchronous architectures. The third
line requests remote execution of a predictor program on a synchronous
computer. The LOCAL directive identifies a program to run on the local
workstation after the remote executions have begun."

Structure built here::

    collector x2 (ASYNC) ──┐
                           ├─ data ──> predictor (SYNC) ── data ──> display (LOCAL)
    usercollect (WORKSTATION) ─┘

The collectors and usercollect gather observations (compute + output
files); the predictor runs the model; the display renders the forecast on
the user's workstation.
"""

from __future__ import annotations

from repro.sdm import ProblemSpecification
from repro.taskgraph import ExecutionHints, ProblemClass, TaskGraph
from repro.vmpi.api import Checkpoint, Compute, Emit, WriteFile

#: The exact script from the paper.
WEATHER_SCRIPT = '''\
ASYNC 2 "/apps/snow/collector.vce"
WORKSTATION 1 "/apps/snow/usercollect.vce"
SYNC 1 "/apps/snow/predictor.vce"
LOCAL "/apps/snow/display.vce"
'''


def weather_programs(
    collect_work: float = 20.0,
    predict_work: float = 400.0,
    display_work: float = 2.0,
    checkpoint_steps: int = 8,
):
    """Program bodies for the four weather modules."""

    def collector(ctx):
        yield Compute(collect_work)
        yield WriteFile(f"obs-{ctx.rank}.dat", size=2_000_000)
        yield Emit("weather.collected", {"rank": ctx.rank})
        return f"observations[{ctx.rank}]"

    def usercollect(ctx):
        yield Compute(collect_work / 2)
        yield WriteFile("user-obs.dat", size=500_000)
        return "user-observations"

    def predictor(ctx):
        step = ctx.restored_state or 0
        per_step = predict_work / checkpoint_steps
        while step < checkpoint_steps:
            yield Compute(per_step)
            step += 1
            yield Checkpoint(step, size=100_000)
        yield WriteFile("forecast.dat", size=1_000_000)
        return "48h forecast: snow"

    def display(ctx):
        yield Compute(display_work)
        yield Emit("weather.displayed", {})
        return "displayed"

    return {
        "collector": collector,
        "usercollect": usercollect,
        "predictor": predictor,
        "display": display,
    }


def build_weather_graph(
    collect_work: float = 20.0,
    predict_work: float = 400.0,
    display_work: float = 2.0,
) -> TaskGraph:
    """The annotated weather task graph (programs attached, classes set)."""
    spec = (
        ProblemSpecification("weather")
        .task("collector", "gather observations", work=collect_work, instances=2,
              hints=ExecutionHints(runtime_weight=1.0))
        .task("usercollect", "gather user observations", work=collect_work / 2)
        .task(
            "predictor",
            "run the forecast model",
            work=predict_work,
            memory_mb=64,
            hints=ExecutionHints(runtime_weight=10.0),
        )
        .task("display", "render the forecast", work=display_work, local=True)
        .flow("collector", "predictor", volume=4_000_000)
        .flow("usercollect", "predictor", volume=500_000)
        .flow("predictor", "display", volume=1_000_000)
    )
    graph = spec.build()
    programs = weather_programs(collect_work, predict_work, display_work)
    classes = {
        "collector": ProblemClass.ASYNCHRONOUS,
        "usercollect": ProblemClass.ASYNCHRONOUS,
        "predictor": ProblemClass.SYNCHRONOUS,
        "display": ProblemClass.ASYNCHRONOUS,
    }
    for node in graph:
        node.problem_class = classes[node.name]
        node.language = "py"
        node.program = programs[node.name]
    return graph


def weather_class_map():
    """task → machine class, exactly as the script's directives request."""
    from repro.machines import MachineClass

    return {
        "collector": MachineClass.WORKSTATION,  # ASYNC -> workstation group
        "usercollect": MachineClass.WORKSTATION,
        "predictor": MachineClass.SIMD,  # SYNC -> SIMD group
        "display": None,  # LOCAL
    }
