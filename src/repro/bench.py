"""Kernel & scheduler performance measurement (``repro bench``).

Runs canonical workloads end to end and reports, per workload:

- **events/sec** — simulator events processed per wall-clock second, the
  kernel-throughput headline number;
- **dispatch latency per task** — wall milliseconds per completed task
  instance (kernel + runtime dispatch + scheduler amortized per task);
- **scheduler overhead** — the share of emitted log events that belong to
  the scheduler/membership subsystems (``sched.*`` + ``isis.*``), a
  deterministic proxy for how much of a run is coordination rather than
  application work;
- **replay digest** — the run's :func:`event_log_digest`, so a perf run
  doubles as a determinism check (same workload + seed ⇒ same digest).

Raw events/sec is machine-dependent, so regression gating is done on the
**normalized ratio**: workload events/sec divided by the machine's raw
event-pump rate (:func:`pump_rate`, an empty-callback microbenchmark run in
the same process). Host speed cancels out of the ratio; a slowdown in
kernel/scheduler code does not. ``check_against_baseline`` fails a workload
when its ratio falls more than ``tolerance`` (default 25%) below the
checked-in baseline (``BENCH_kernel.json``).

Workloads (full / ``--quick``):

- ``randomdag-1k`` / ``randomdag-5k`` — seeded layered random DAGs run
  with local placement: thousands of task dispatches, precedence
  advancement, and compute timers pushed through the kernel.
- ``stencil`` — lockstep halo exchange over vMPI with bid-based
  allocation: message-heavy, exercises channels and the scheduler.
- ``chaos-mix`` — the weather + pipeline soak under the ``chaos-mix``
  fault schedule with reliable transport and failover: retry timers,
  cancellations, view changes, re-dispatch.

``repro bench --backend sharded --shards N`` runs the same workloads on the
sharded backend; replay digests are backend-invariant, so
:func:`check_backend_parity` gates a sharded run against the serial
baseline's digests while :func:`check_against_baseline` gates its ratios
against the ``sharded`` section ratcheted by ``benchmarks/bench_kernel.py``.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Callable

from repro.netsim.kernel import Simulator

#: normalized-ratio drop that fails the regression gate
DEFAULT_TOLERANCE = 0.25


@dataclass
class BenchResult:
    """One workload's measurement (see module docstring)."""

    name: str
    wall_seconds: float
    sim_events: int
    events_per_sec: float
    instances: int
    dispatch_ms_per_instance: float
    sched_event_share: float
    sim_makespan: float
    digest: str
    #: events/sec divided by the same-process pump rate (machine-normalized)
    normalized_ratio: float = 0.0

    def to_dict(self) -> dict:
        return asdict(self)


def pump_rate(events: int = 100_000) -> float:
    """Raw kernel dispatch rate (events/sec) for empty callbacks.

    A chain of no-op events — alternating same-timestamp ``call_soon`` and
    short ``schedule`` hops so both the batch fast path and the heap are
    exercised. This is the machine-speed yardstick that normalizes workload
    events/sec for cross-host comparison.
    """
    sim = Simulator(0)
    remaining = events

    def tick() -> None:
        nonlocal remaining
        remaining -= 1
        if remaining <= 0:
            return
        if remaining % 4:
            sim.call_soon(tick)
        else:
            sim.schedule(0.001, tick)

    sim.call_soon(tick)
    t0 = time.perf_counter()  # detlint: ok(D001) — wall clock IS the measurement
    sim.run()
    elapsed = time.perf_counter() - t0  # detlint: ok(D001)
    return events / elapsed


# --------------------------------------------------------------- workloads


def _measure(name: str, scenario: Callable[[], tuple], repeats: int) -> BenchResult:
    """Run *scenario* *repeats* times; keep the fastest run's numbers.

    *scenario* returns ``(vce, instances)`` for a freshly built and
    completed run. Event counts, makespan, and the digest are deterministic
    across repeats — only wall time varies — so keeping the minimum-wall
    run is the standard noise floor estimator.
    """
    from repro.trace.replay import event_log_digest

    best = None
    for _ in range(repeats):
        t0 = time.perf_counter()  # detlint: ok(D001) — wall clock IS the measurement
        vce, instances = scenario()
        wall = time.perf_counter() - t0  # detlint: ok(D001)
        if best is None or wall < best[0]:
            best = (wall, vce, instances)
    wall, vce, instances = best
    events = vce.sim.events_processed
    log = vce.sim.log
    counts = log.category_counts()
    total_log = sum(counts.values())
    sched = sum(
        n for cat, n in counts.items() if cat.startswith(("sched.", "isis."))
    )
    return BenchResult(
        name=name,
        wall_seconds=round(wall, 4),
        sim_events=events,
        events_per_sec=round(events / wall, 1),
        instances=instances,
        dispatch_ms_per_instance=round(wall * 1000.0 / max(instances, 1), 4),
        sched_event_share=round(sched / max(total_log, 1), 4),
        sim_makespan=round(vce.sim.now, 3),
        digest=event_log_digest(log),
    )


def _run_randomdag(
    layers: int, width: int, seed: int = 7, backend: str = "serial", shards: int = 4
):
    from repro.core import VCEConfig, VirtualComputingEnvironment, workstation_cluster
    from repro.scheduler.execution_program import RunState
    from repro.workloads import build_random_dag

    graph = build_random_dag(layers=layers, width=width, seed=seed)
    instances = sum(node.instances for node in graph)
    vce = VirtualComputingEnvironment(
        workstation_cluster(4), VCEConfig(seed=seed, backend=backend, shards=shards)
    ).boot()
    run = vce.submit(graph, class_map={node.name: None for node in graph})
    vce.run_to_completion(run, timeout=1_000_000.0)
    assert run.state is RunState.DONE, run.error
    return vce, instances


def _run_stencil(
    ranks: int, iterations: int, seed: int = 7, backend: str = "serial", shards: int = 4
):
    from repro.core import VCEConfig, VirtualComputingEnvironment, workstation_cluster
    from repro.machines import MachineClass
    from repro.scheduler.execution_program import RunState
    from repro.workloads import build_stencil_graph

    graph = build_stencil_graph(ranks=ranks, cells=64, iterations=iterations)
    vce = VirtualComputingEnvironment(
        workstation_cluster(ranks), VCEConfig(seed=seed, backend=backend, shards=shards)
    ).boot()
    run = vce.submit(graph, class_map={"grid": MachineClass.WORKSTATION})
    vce.run_to_completion(run, timeout=100_000.0)
    assert run.state is RunState.DONE, run.error
    return vce, ranks


def _run_chaos_mix(
    stage_work: float, seed: int = 3, backend: str = "serial", shards: int = 4
):
    from repro.core import VCEConfig, VirtualComputingEnvironment, heterogeneous_cluster
    from repro.migration.failover import FailoverConfig
    from repro.scheduler.execution_program import RunState
    from repro.workloads import WEATHER_SCRIPT, build_pipeline_graph, weather_programs

    config = VCEConfig(
        seed=seed,
        backend=backend,
        shards=shards,
        reliable_transport=True,
        failover=FailoverConfig(),
    )
    vce = VirtualComputingEnvironment(heterogeneous_cluster(), config).boot()
    vce.chaos("chaos-mix", seed=seed)
    runs = [
        vce.run_script(WEATHER_SCRIPT, weather_programs(), name="weather"),
        vce.submit(build_pipeline_graph(stages=4, stage_work=stage_work, name="pipe")),
    ]
    instances = 0
    for run in runs:
        vce.run_to_completion(run, timeout=2_000.0)
        assert run.state is RunState.DONE, run.error
        instances += len(run.app.records)
    vce.run(until=vce.sim.now + 30.0)  # let trailing fault windows close
    return vce, instances


#: name -> (full-mode scenario, quick-mode scenario, full repeats, quick repeats)
#: scenarios accept ``backend=``/``shards=`` keywords (see run_suite)
WORKLOADS: dict[str, tuple] = {
    "randomdag-1k": (
        lambda **kw: _run_randomdag(layers=40, width=50, **kw),
        lambda **kw: _run_randomdag(layers=12, width=25, **kw),
        1,
        1,
    ),
    "randomdag-5k": (
        lambda **kw: _run_randomdag(layers=100, width=100, **kw),
        None,  # full-size only: ~1.4M events is too slow for a smoke gate
        1,
        0,
    ),
    "stencil": (
        lambda **kw: _run_stencil(ranks=8, iterations=40, **kw),
        lambda **kw: _run_stencil(ranks=4, iterations=12, **kw),
        3,
        3,
    ),
    "chaos-mix": (
        lambda **kw: _run_chaos_mix(stage_work=15.0, **kw),
        lambda **kw: _run_chaos_mix(stage_work=15.0, **kw),
        3,
        3,
    ),
}


def run_suite(
    quick: bool = False,
    pump_events: int = 100_000,
    backend: str = "serial",
    shards: int = 4,
) -> dict:
    """Run every workload; returns the ``BENCH_kernel.json`` payload shape
    (one ``workloads`` map plus the pump yardstick).

    *backend*/*shards* select the simulation backend under test; replay
    digests are backend-invariant, so a sharded suite can be diffed
    against the serial baseline with :func:`check_backend_parity`.
    """
    rate = pump_rate(pump_events)
    results: dict[str, dict] = {}
    for name, (full, quick_fn, full_repeats, quick_repeats) in WORKLOADS.items():
        scenario = quick_fn if quick else full
        repeats = quick_repeats if quick else full_repeats
        if scenario is None or repeats == 0:
            continue
        result = _measure(
            name, lambda: scenario(backend=backend, shards=shards), repeats
        )
        result.normalized_ratio = round(result.events_per_sec / rate, 4)
        results[name] = result.to_dict()
    return {
        "mode": "quick" if quick else "full",
        "backend": backend,
        "shards": shards if backend == "sharded" else 1,
        "pump_events_per_sec": round(rate, 1),
        "workloads": results,
    }


def check_against_baseline(
    current: dict, baseline: dict, tolerance: float = DEFAULT_TOLERANCE
) -> list[str]:
    """Compare normalized ratios; returns failure messages (empty = pass).

    Only workloads present in both and measured in the same mode are
    compared — the gate is mode-local because quick and full sizes have
    different event mixes. Digest changes are reported as failures too:
    a perf change must not silently change replay behaviour.
    """
    failures: list[str] = []
    base_workloads = baseline.get("workloads", {})
    for name, result in current.get("workloads", {}).items():
        base = base_workloads.get(name)
        if base is None:
            continue
        floor = base["normalized_ratio"] * (1.0 - tolerance)
        if result["normalized_ratio"] < floor:
            failures.append(
                f"{name}: normalized events/sec ratio {result['normalized_ratio']:.4f} "
                f"fell below {floor:.4f} "
                f"(baseline {base['normalized_ratio']:.4f} - {tolerance:.0%})"
            )
        if result["sim_events"] != base["sim_events"]:
            failures.append(
                f"{name}: simulated event count changed "
                f"{base['sim_events']} -> {result['sim_events']} "
                "(update the baseline if this is an intended behaviour change)"
            )
    return failures


def check_backend_parity(current: dict, serial_baseline: dict) -> list[str]:
    """A non-serial backend must replay the serial baseline byte-identically.

    Compares every shared workload's replay digest and simulated event
    count against the *serial* baseline section for the same mode — the
    backend contract (see docs/PARALLELISM.md) is that partitioning is
    invisible to the event schedule. Returns failure messages.
    """
    failures: list[str] = []
    base_workloads = serial_baseline.get("workloads", {})
    for name, result in current.get("workloads", {}).items():
        base = base_workloads.get(name)
        if base is None:
            continue
        if result["digest"] != base["digest"]:
            failures.append(
                f"{name}: {current.get('backend', '?')} backend replay digest "
                f"{result['digest'][:16]}... diverged from the serial "
                f"baseline {base['digest'][:16]}... — backend invariance broken"
            )
        if result["sim_events"] != base["sim_events"]:
            failures.append(
                f"{name}: simulated event count {result['sim_events']} != "
                f"serial baseline {base['sim_events']}"
            )
    return failures


def check_sharded_overhead(
    sharded_suite: dict, serial_suite: dict, floor: float = 0.4
) -> list[str]:
    """Same-process throughput gate for the sharded engine.

    Compares the sharded suite's events/sec against a serial suite
    measured in the *same process* moments apart, so host speed and load
    cancel out of the ratio — unlike a checked-in baseline, which a busy
    CI machine can miss by more than any reasonable tolerance. The
    sharded engine legitimately runs somewhat below serial (window
    bookkeeping; see docs/PARALLELISM.md), so the floor only catches a
    drastic engine regression such as an O(shards) scan per event.
    """
    failures: list[str] = []
    for name, result in sharded_suite.get("workloads", {}).items():
        base = serial_suite.get("workloads", {}).get(name)
        if base is None or base["events_per_sec"] <= 0:
            continue
        ratio = result["events_per_sec"] / base["events_per_sec"]
        if ratio < floor:
            failures.append(
                f"{name}: sharded engine ran at {ratio:.2f}x the serial "
                f"throughput measured in this process (floor {floor:.2f}x) "
                "— per-event engine overhead regressed"
            )
    return failures


def sharded_scaling(
    workload: str = "randomdag-5k", shard_counts: tuple = (1, 2, 4, 8)
) -> dict:
    """Measure events/sec of *workload* under the sharded backend at each
    shard count (plus the serial kernel as the 0-shard reference) and
    verify every run replays the serial digest. The ``scaling`` record of
    BENCH_kernel.json's ``sharded`` section."""
    full, _, _, _ = WORKLOADS[workload]
    serial = _measure(workload, lambda: full(), 1)
    per_shards: dict[str, dict] = {}
    for n in shard_counts:
        result = _measure(
            f"{workload}@{n}", lambda: full(backend="sharded", shards=n), 1
        )
        if result.digest != serial.digest:
            raise AssertionError(
                f"{workload} at {n} shards diverged from the serial digest"
            )
        per_shards[str(n)] = {
            "events_per_sec": result.events_per_sec,
            "speedup_vs_serial": round(
                result.events_per_sec / serial.events_per_sec, 3
            ),
        }
    return {
        "workload": workload,
        "sim_events": serial.sim_events,
        "digest": serial.digest,
        "serial_events_per_sec": serial.events_per_sec,
        "per_shards": per_shards,
    }


# ------------------------------------------------------------- scale suite


#: scenario name -> SoakConfig keyword overrides, per mode.  The quick
#: scenarios are the CI scale-smoke gate (a couple of minutes end to end);
#: the full scenarios add the headline run: 50 tenants / 2000 apps on 256
#: workstations, six-figure concurrent instances under hierarchical
#: bidding.  Every mode carries a flat (fanout=1) twin of its hier
#: scenario so ``fanout_reduction`` — flat members polled per round over
#: hier members polled per round — is measured, not assumed.
SCALE_SCENARIOS: dict[str, dict[str, dict]] = {
    "quick": {
        "flat": dict(
            tenants=8, apps=120, machines=48, fanout=1, seed=0,
            instances=(16, 32), work=(8.0, 16.0), arrival_span=90.0,
            telemetry_interval=300.0, settle=30.0,
        ),
        "hier": dict(
            tenants=8, apps=120, machines=48, fanout=4, seed=0,
            instances=(16, 32), work=(8.0, 16.0), arrival_span=90.0,
            telemetry_interval=300.0, settle=30.0,
        ),
    },
    "full": {
        "flat": dict(
            tenants=20, apps=500, machines=128, fanout=1, seed=0,
            instances=(48, 96), work=(8.0, 16.0), arrival_span=150.0,
            telemetry_interval=600.0, settle=40.0,
        ),
        "hier": dict(
            tenants=20, apps=500, machines=128, fanout=8, seed=0,
            instances=(48, 96), work=(8.0, 16.0), arrival_span=150.0,
            telemetry_interval=600.0, settle=40.0,
        ),
        "hier-2000": dict(),  # SoakConfig() defaults: the headline run
    },
}

#: flat/hier members-polled-per-round ratio the scale gate requires —
#: hierarchical bidding must poll well under half of what flat polls
MIN_FANOUT_REDUCTION = 2.0


def run_scale_suite(quick: bool = False, shards: int = 2) -> dict:
    """Run the soak scale scenarios; returns the ``BENCH_scale.json``
    payload shape.

    Each scenario is one :func:`repro.soak.run_soak` run; its report
    (completion counts, peak concurrency, bid fan-out per round, replay
    digest) is deterministic, so everything but ``wall_seconds`` is
    gate-able. The ``hier`` scenario is additionally replayed on the
    sharded backend and its digest recorded — backend invariance is part
    of the scale contract.
    """
    from repro.soak import SoakConfig, run_soak

    mode = "quick" if quick else "full"
    scenarios: dict[str, dict] = {}
    for name, overrides in SCALE_SCENARIOS[mode].items():
        t0 = time.perf_counter()  # detlint: ok(D001) — wall clock IS the measurement
        vce, driver, report = run_soak(SoakConfig(**overrides))
        wall = time.perf_counter() - t0  # detlint: ok(D001)
        entry = report.to_dict()
        del entry["tenants"]  # per-tenant detail is for `repro soak --json`
        entry["wall_seconds"] = round(wall, 2)
        entry["events_per_sec"] = round(vce.sim.events_processed / wall, 1)
        scenarios[name] = entry
    sharded_cfg = SoakConfig(
        **SCALE_SCENARIOS[mode]["hier"], backend="sharded", shards=shards
    )
    scenarios["hier@sharded"] = {
        "backend": "sharded",
        "shards": shards,
        "digest": run_soak(sharded_cfg)[2].digest,
    }
    flat, hier = scenarios["flat"], scenarios["hier"]
    reduction = flat["bid_fanout_per_round"] / max(
        hier["bid_fanout_per_round"], 1e-9
    )
    return {
        "mode": mode,
        "shards": shards,
        "fanout_reduction": round(reduction, 3),
        "scenarios": scenarios,
    }


def check_scale_suite(current: dict) -> list[str]:
    """Self-contained invariants of a scale suite run (no baseline needed):
    every admitted application completes, the flat and hier twins place
    identical workloads, hierarchy polls at most half of what flat polls,
    and the sharded replay matches the serial one byte for byte."""
    failures: list[str] = []
    scenarios = current.get("scenarios", {})
    for name, entry in scenarios.items():
        if "completed" not in entry:
            continue
        if entry["failed"]:
            failures.append(f"{name}: {entry['failed']} applications failed")
        if entry["completed"] != entry["admitted"]:
            failures.append(
                f"{name}: {entry['admitted']} admitted but only "
                f"{entry['completed']} completed — the soak did not drain"
            )
        if entry["submitted"] != entry["config_apps"]:
            failures.append(
                f"{name}: submitted {entry['submitted']} of "
                f"{entry['config_apps']} configured arrivals"
            )
    reduction = current.get("fanout_reduction", 0.0)
    if reduction < MIN_FANOUT_REDUCTION:
        failures.append(
            f"bid fan-out reduction {reduction:.2f}x fell below "
            f"{MIN_FANOUT_REDUCTION:.1f}x — hierarchical bidding is no "
            "longer sub-linear against the flat broadcast"
        )
    hier = scenarios.get("hier")
    sharded = scenarios.get("hier@sharded")
    if hier and sharded and hier["digest"] != sharded["digest"]:
        failures.append(
            "hier soak replay digest diverged between the serial and "
            "sharded backends — backend invariance broken"
        )
    return failures


def check_scale_baseline(current: dict, baseline: dict) -> list[str]:
    """Gate a scale suite against the checked-in ``BENCH_scale.json``.

    Deterministic quantities (replay digest, event counts, peak
    concurrency, fan-out per round) must match the baseline exactly for
    shared scenarios — any drift means scheduling behaviour changed and
    the baseline must be consciously regenerated. Wall-clock numbers are
    never gated.
    """
    failures: list[str] = list(check_scale_suite(current))
    base_scenarios = baseline.get("scenarios", {})
    for name, entry in current.get("scenarios", {}).items():
        base = base_scenarios.get(name)
        if base is None or "completed" not in entry:
            continue
        for key in (
            "digest",
            "events",
            "peak_admitted_instances",
            "peak_live_instances",
            "bid_fanout_per_round",
            "completed",
        ):
            if entry.get(key) != base.get(key):
                failures.append(
                    f"{name}: {key} changed {base.get(key)} -> {entry.get(key)} "
                    "(update BENCH_scale.json if this is intended)"
                )
    return failures
