"""Compilers and binaries.

"The compilation manager will use standard compilers to generate machine
code" (§3.1.2) — here, a :class:`Compiler` is a cost model producing
:class:`Binary` artifacts. The default registry provides compilers for the
paper's language stand-ins (HPF, HPC++, C) on the classes where they
plausibly existed in 1994.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machines.archclass import MachineClass
from repro.util.errors import CompilationError


@dataclass(frozen=True, slots=True)
class Binary:
    """A prepared executable for (task, machine class).

    Machines within a class are object-code compatible (§5: "In the current
    implementation of the VCE these groups are object-code compatible"), so
    one binary per class suffices.
    """

    task: str
    language: str
    machine_class: MachineClass
    size: int = 500_000
    compiled_at: float = 0.0


@dataclass(frozen=True, slots=True)
class Compiler:
    """A (language, target-class) compiler with a linear time model:

    ``compile_time = base_seconds + source_size * seconds_per_source_unit``
    """

    language: str
    target: MachineClass
    base_seconds: float = 5.0
    seconds_per_source_unit: float = 0.01
    binary_size: int = 500_000

    def compile_time(self, source_size: int) -> float:
        return self.base_seconds + source_size * self.seconds_per_source_unit

    def compile(self, task: str, source_size: int, now: float) -> Binary:
        return Binary(task, self.language, self.target, self.binary_size, now)


class CompilerRegistry:
    """Lookup of compilers by (language, machine class)."""

    def __init__(self) -> None:
        self._compilers: dict[tuple[str, MachineClass], Compiler] = {}

    def register(self, compiler: Compiler) -> Compiler:
        key = (compiler.language, compiler.target)
        if key in self._compilers:
            raise CompilationError(
                f"compiler for {compiler.language!r} on {compiler.target} already registered"
            )
        self._compilers[key] = compiler
        return compiler

    def lookup(self, language: str, target: MachineClass) -> Compiler | None:
        return self._compilers.get((language, target))

    def targets_for(self, language: str) -> set[MachineClass]:
        return {t for (lang, t) in self._compilers if lang == language}

    def __len__(self) -> int:
        return len(self._compilers)


def default_registry() -> CompilerRegistry:
    """Compilers for the paper's language examples.

    - HPF compiles everywhere (its portability is the point of §3.1.1);
    - HPC++ targets MIMD machines and workstations;
    - C targets workstations and MIMD;
    - "py" (the tests' convenience language) compiles everywhere, fast.
    """
    registry = CompilerRegistry()
    everywhere = list(MachineClass)
    for target in everywhere:
        registry.register(Compiler("hpf", target, base_seconds=20.0))
        registry.register(Compiler("py", target, base_seconds=0.5, seconds_per_source_unit=0.0))
    for target in (MachineClass.MIMD, MachineClass.WORKSTATION):
        registry.register(Compiler("hpc++", target, base_seconds=30.0))
        registry.register(Compiler("c", target, base_seconds=10.0))
    return registry
