"""The compilation manager (EXM, §3.1.2 / §4.1).

"The compilation manager will be responsible for preparing the executable
code for each component of the application. ... maps the architecture
independent computation and communication requirements of VCE tasks to
machines that are actually available in the VCE network. ... In most cases
several different machines may be used to execute a particular task. In
this case the compilation manager prepares executable images for all
possible machines. ... By preparing all possible executables before an
application is actually run, the runtime manager will be able to move a
given task among various machine architectures without the need to compile
a task while the application is running."

Pieces:

- :data:`DEFAULT_CLASS_MAP` — problem-architecture → machine-class
  preference (SYNC→SIMD first, etc.), the "low-level counterparts" mapping.
- :class:`Compiler` / :class:`CompilerRegistry` — per (language, class)
  compilers with modelled compile times.
- :class:`Binary` / :class:`BinaryCache` — prepared executables keyed by
  (task, machine class); groups are object-code compatible (§5).
- :class:`CompilationManager` — planning and the runtime-facing
  ``load_delay`` (zero when a binary is prepared; compile-on-demand time
  otherwise — the cost anticipatory compilation removes).
- :class:`AnticipatoryEngine` — §4.5: uses idle machines to compile
  not-yet-dispatchable modules and replicate their input files.
"""

from repro.compilation.classes import DEFAULT_CLASS_MAP, candidate_classes
from repro.compilation.compiler import Binary, Compiler, CompilerRegistry, default_registry
from repro.compilation.manager import BinaryCache, CompilationManager, CompilationPlan, CompileJob
from repro.compilation.anticipatory import AnticipatoryEngine

__all__ = [
    "DEFAULT_CLASS_MAP",
    "candidate_classes",
    "Compiler",
    "CompilerRegistry",
    "default_registry",
    "Binary",
    "BinaryCache",
    "CompilationManager",
    "CompilationPlan",
    "CompileJob",
    "AnticipatoryEngine",
]
