"""Problem-class → machine-class mapping.

"At this level all the machines participating in the VCE are divided into
classes. These classes are the low-level counterparts of the problem
architecture classes used by the design stage. For example, the synchronous
class of problems maps easily to most SIMD style machine." (§4.1)

The map is *preference ordered*: earlier classes suit the problem better.
A task's actual candidate set intersects this order with (a) classes with
registered machines satisfying the task's hardware requirements and (b)
classes for which a compiler for the task's language exists.
"""

from __future__ import annotations

from repro.machines.archclass import MachineClass
from repro.taskgraph.node import ProblemClass

#: Preference-ordered machine classes per problem architecture.
DEFAULT_CLASS_MAP: dict[ProblemClass, tuple[MachineClass, ...]] = {
    ProblemClass.SYNCHRONOUS: (
        MachineClass.SIMD,
        MachineClass.VECTOR,
        MachineClass.MIMD,
        MachineClass.WORKSTATION,
    ),
    ProblemClass.LOOSELY_SYNCHRONOUS: (
        MachineClass.MIMD,
        MachineClass.WORKSTATION,
        MachineClass.SIMD,
    ),
    ProblemClass.ASYNCHRONOUS: (
        MachineClass.WORKSTATION,
        MachineClass.MIMD,
    ),
}


def candidate_classes(
    problem_class: ProblemClass,
    class_map: dict[ProblemClass, tuple[MachineClass, ...]] | None = None,
) -> tuple[MachineClass, ...]:
    """Preference-ordered machine classes for a problem class."""
    table = class_map or DEFAULT_CLASS_MAP
    return table[problem_class]
