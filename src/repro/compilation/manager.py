"""The compilation manager proper: planning, caching, load delays."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.compilation.classes import DEFAULT_CLASS_MAP, candidate_classes
from repro.compilation.compiler import Binary, CompilerRegistry, default_registry
from repro.machines.archclass import MachineClass
from repro.machines.database import MachineDatabase
from repro.taskgraph import TaskGraph
from repro.taskgraph.node import ProblemClass, TaskNode
from repro.util.errors import CompilationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.machines.machine import Machine


@dataclass(frozen=True, slots=True)
class CompileJob:
    """One planned compilation."""

    task: str
    language: str
    target: MachineClass
    source_size: int
    compile_time: float


@dataclass
class CompilationPlan:
    """Per-task candidate classes and the compile jobs to realize them."""

    jobs: list[CompileJob] = field(default_factory=list)
    candidates: dict[str, tuple[MachineClass, ...]] = field(default_factory=dict)

    @property
    def total_compile_time(self) -> float:
        return sum(j.compile_time for j in self.jobs)

    def jobs_for(self, task: str) -> list[CompileJob]:
        return [j for j in self.jobs if j.task == task]


class BinaryCache:
    """Prepared executables keyed by (task, machine class)."""

    def __init__(self) -> None:
        self._binaries: dict[tuple[str, MachineClass], Binary] = {}

    def add(self, binary: Binary) -> None:
        self._binaries[(binary.task, binary.machine_class)] = binary

    def has(self, task: str, machine_class: MachineClass) -> bool:
        return (task, machine_class) in self._binaries

    def get(self, task: str, machine_class: MachineClass) -> Binary | None:
        return self._binaries.get((task, machine_class))

    def classes_for(self, task: str) -> set[MachineClass]:
        return {c for (t, c) in self._binaries if t == task}

    def __len__(self) -> int:
        return len(self._binaries)


class CompilationManager:
    """Plans and performs compilations; answers the runtime's binary needs.

    Implements the :class:`repro.runtime.manager.BinaryService` protocol:
    ``load_delay`` is ~0 when a binary is already prepared for the target's
    class, the full compile time when compiling on demand, and raises when
    no compiler exists — making anticipatory compilation's benefit (§4.5)
    directly measurable.
    """

    #: seconds to load an already-prepared binary onto a machine
    LOAD_SECONDS = 0.2

    def __init__(
        self,
        database: MachineDatabase,
        registry: CompilerRegistry | None = None,
        class_map: dict[ProblemClass, tuple[MachineClass, ...]] | None = None,
    ) -> None:
        self.database = database
        self.registry = registry or default_registry()
        self.class_map = class_map or DEFAULT_CLASS_MAP
        self.cache = BinaryCache()
        self.on_demand_compiles = 0

    # ------------------------------------------------------------- planning

    def feasible_classes(self, node: TaskNode) -> tuple[MachineClass, ...]:
        """Preference-ordered classes on which *node* can actually run:
        problem-class preference ∩ machines present & satisfying hardware
        requirements ∩ compiler availability for the node's language."""
        if node.problem_class is None:
            raise CompilationError(f"task {node.name!r} has not been design-classified")
        if node.language is None:
            raise CompilationError(f"task {node.name!r} has no implementation language")
        preference = candidate_classes(node.problem_class, self.class_map)
        # File requirements gate *placement*, not compilation: anticipatory
        # replication may create the files later on any candidate machine.
        reqs = {k: v for k, v in node.hardware_requirements().items() if k != "files"}
        with_machines = self.database.feasible_classes(reqs)
        with_compiler = self.registry.targets_for(node.language)
        return tuple(c for c in preference if c in with_machines and c in with_compiler)

    def plan(self, graph: TaskGraph, source_sizes: dict[str, int] | None = None) -> CompilationPlan:
        """Plan binaries for *all* feasible classes of every task (the
        paper's prepare-everything policy enabling cross-class moves)."""
        sizes = source_sizes or {}
        plan = CompilationPlan()
        for node in graph:
            classes = self.feasible_classes(node)
            if not classes:
                raise CompilationError(
                    f"task {node.name!r} ({node.language} / {node.problem_class}) "
                    "has no feasible machine class"
                )
            plan.candidates[node.name] = classes
            source_size = sizes.get(node.name, 1000)
            for target in classes:
                if self.cache.has(node.name, target):
                    continue
                compiler = self.registry.lookup(node.language, target)
                assert compiler is not None  # guaranteed by feasible_classes
                plan.jobs.append(
                    CompileJob(
                        node.name,
                        node.language,
                        target,
                        source_size,
                        compiler.compile_time(source_size),
                    )
                )
        return plan

    # ------------------------------------------------------------ compiling

    def compile_job(self, job: CompileJob, now: float = 0.0) -> Binary:
        compiler = self.registry.lookup(job.language, job.target)
        if compiler is None:
            raise CompilationError(f"no compiler for {job.language!r} on {job.target}")
        binary = compiler.compile(job.task, job.source_size, now)
        self.cache.add(binary)
        return binary

    def compile_all(self, plan: CompilationPlan, now: float = 0.0) -> float:
        """Compile every planned job immediately (serially); returns the
        total compile time the caller should account for."""
        for job in plan.jobs:
            self.compile_job(job, now)
        return plan.total_compile_time

    # ---------------------------------------------------------- proxies

    def generate_proxy(self, iface, channel: str, server_port: str) -> str:
        """Emit client-proxy source for an IDL interface.

        "Proxies will be generated by the compilation manager when needed,
        using a tool such as the IDL compiler provided by the Object
        Management Group." (§4.2) — delegates to the stub generator in
        :mod:`repro.objects`.
        """
        from repro.objects.proxy import generate_stub_source

        self.proxies_generated = getattr(self, "proxies_generated", 0) + 1
        return generate_stub_source(iface, channel, server_port)

    # --------------------------------------------------- runtime-facing API

    def load_delay(self, task: TaskNode, machine: "Machine", now: float) -> float:
        """See :class:`repro.runtime.manager.BinaryService`.

        ``Binary.compiled_at`` records when the binary *becomes ready*: an
        on-demand compile registers a future-ready binary, so a second
        instance dispatched while the compile is still running waits for the
        same compile rather than free-riding on an unfinished binary.
        """
        existing = self.cache.get(task.name, machine.arch_class)
        if existing is not None:
            remaining = max(0.0, existing.compiled_at - now)
            return remaining + self.LOAD_SECONDS
        if task.language is None:
            raise CompilationError(f"task {task.name!r} was never coded")
        compiler = self.registry.lookup(task.language, machine.arch_class)
        if compiler is None:
            raise CompilationError(
                f"no compiler for {task.language!r} on {machine.arch_class}; "
                f"cannot run task {task.name!r} on machine {machine.name!r}"
            )
        self.on_demand_compiles += 1
        compile_time = compiler.compile_time(1000)
        self.cache.add(compiler.compile(task.name, 1000, now + compile_time))
        return compile_time + self.LOAD_SECONDS
