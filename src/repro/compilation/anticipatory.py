"""Anticipatory processing (§4.5).

"Anticipatory processing is a method for using idle processors to increase
system throughput even when there are no dispatchable VCE tasks available
to exploit them. ... If the second module is a C program we could compile
it on one machine of each different architecture in the network so that, at
run time, we will have our choice of where to dispatch it (anticipatory
compilation). If the second module requires input files other than the ones
produced by its predecessor module, we could use idle resources to
replicate those files at many sites that may be candidates to host the
second module when it becomes dispatchable."

The engine runs inside the simulation: compile jobs occupy idle machines
for their compile time; file replication charges transfer time before the
file appears in the target machine's file set.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.compilation.manager import CompilationManager, CompilationPlan, CompileJob
from repro.machines.database import MachineDatabase

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.kernel import Simulator
    from repro.netsim.network import Network
    from repro.taskgraph import TaskGraph


class AnticipatoryEngine:
    """Schedules compile jobs and file replication onto idle machines."""

    #: a machine is considered usable for anticipatory work below this load
    IDLE_THRESHOLD = 0.25

    def __init__(
        self,
        sim: "Simulator",
        network: "Network",
        database: MachineDatabase,
        compilation: CompilationManager,
    ) -> None:
        self.sim = sim
        self.network = network
        self.database = database
        self.compilation = compilation
        self._busy: set[str] = set()  # machines currently doing anticipatory work
        self.compiles_completed = 0
        self.files_replicated = 0

    # -------------------------------------------------------------- compiling

    def compile_ahead(
        self,
        plan: CompilationPlan,
        on_all_done: Callable[[], None] | None = None,
    ) -> int:
        """Start every planned compile job on idle machines, in parallel
        where idle capacity allows. Returns the number of jobs started.

        Jobs for which no idle machine exists right now are retried when a
        running anticipatory job frees its machine.
        """
        queue = list(plan.jobs)
        outstanding = len(queue)
        if outstanding == 0:
            if on_all_done:
                on_all_done()
            return 0

        def pump() -> None:
            nonlocal outstanding
            while queue:
                machine = self._pick_idle_machine()
                if machine is None:
                    # no idle capacity: poll again shortly
                    self.sim.schedule(1.0, pump)
                    return
                job = queue.pop(0)
                self._start_job(job, machine, finished)

        def finished() -> None:
            nonlocal outstanding
            outstanding -= 1
            self.compiles_completed += 1
            if outstanding == 0 and on_all_done:
                on_all_done()
            else:
                pump()

        pump()
        return len(plan.jobs)

    def _pick_idle_machine(self) -> str | None:
        best_name, best_load = None, self.IDLE_THRESHOLD
        for machine in self.database:
            if machine.name in self._busy:
                continue
            host = self.network.hosts.get(machine.name)
            if host is not None and not host.up:
                continue
            load = machine.load_at(self.sim.now)
            if load < best_load:
                best_name, best_load = machine.name, load
        return best_name

    def _start_job(self, job: CompileJob, machine_name: str, done: Callable[[], None]) -> None:
        self._busy.add(machine_name)
        speed = max(self.database.get(machine_name).speed, 1e-9)
        duration = job.compile_time / speed
        self.sim.emit(
            "anticipatory.compile_start",
            machine_name,
            task=job.task,
            target=job.target.value,
            duration=duration,
        )

        def complete() -> None:
            self._busy.discard(machine_name)
            self.compilation.compile_job(job, self.sim.now)
            self.sim.emit(
                "anticipatory.compile_done", machine_name, task=job.task, target=job.target.value
            )
            done()

        self.sim.schedule(duration, complete)

    # ------------------------------------------------------------ replication

    def replicate_files(
        self,
        files: dict[str, int],
        candidate_machines: list[str],
        on_done: Callable[[], None] | None = None,
    ) -> int:
        """Copy each (file → size) to every candidate machine that lacks it.
        Transfers run in parallel per target; each charges wire time."""
        transfers = 0
        pending = 0
        for machine_name in candidate_machines:
            machine = self.database.get(machine_name)
            for fname, size in files.items():
                if fname in machine.files:
                    continue
                pending += 1
                transfers += 1
                delay = size / self.network.latency.bandwidth + self.network.latency.base_latency

                def land(machine=machine, fname=fname) -> None:
                    nonlocal pending
                    machine.files.add(fname)
                    self.files_replicated += 1
                    self.sim.emit("anticipatory.replicated", machine.name, file=fname)
                    pending -= 1
                    if pending == 0 and on_done:
                        on_done()

                self.sim.schedule(delay, land)
        if transfers == 0 and on_done:
            on_done()
        return transfers

    # ------------------------------------------------------------ convenience

    def prepare_application(
        self,
        graph: "TaskGraph",
        replicate_to: list[str] | None = None,
        on_ready: Callable[[], None] | None = None,
    ) -> None:
        """Full anticipatory pass for an application: compile every task for
        every feasible class, and replicate declared input files to the
        candidate hosts."""
        plan = self.compilation.plan(graph)
        files = {
            f: 1_000_000 for node in graph for f in node.input_files
        }
        done_flags = {"compiles": False, "files": not files or not replicate_to}

        def check() -> None:
            if all(done_flags.values()) and on_ready:
                on_ready()

        def compiles_done() -> None:
            done_flags["compiles"] = True
            check()

        self.compile_ahead(plan, on_all_done=compiles_done)
        if files and replicate_to:
            def files_done() -> None:
                done_flags["files"] = True
                check()

            self.replicate_files(files, replicate_to, on_done=files_done)
