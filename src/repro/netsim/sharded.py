"""The sharded parallel-simulation backend.

Hosts are partitioned into N shards by consistent hash of the host name;
each shard owns its own event heap (the same tombstone-heap mechanics as the
serial kernel, one heap per shard).  Cross-shard traffic — network sends,
spawns, control-plane callbacks — flows through per-shard-pair channels whose
conservative *lookahead* is derived from link latencies registered by the
network layer (:meth:`register_lookahead`): a shard promises never to inject
an event into a peer earlier than its own clock plus the link lookahead.

Synchronization is conservative (Chandy–Misra–Bryant style).  Each drain
window, the engine selects the shard owning the globally minimal
``(time, seq)`` entry — the classic result that the global minimum is always
safe — and lets that shard commit a *run* of events up to its channel bound:
the minimum ``(time, seq)`` head over every other shard, tightened in place
whenever a callback schedules across shards (the shared-memory analogue of a
null message; :attr:`limit_tightenings` counts them).  Horizon bookkeeping
(``shard clock + link lookahead``) is maintained per shard pair and exposed
through :meth:`horizon` / :meth:`shard_stats` — it is the quantity a
distributed deployment of this engine would gate on, and the deadlock-freedom
precondition is enforced eagerly: a zero-lookahead link between shards is
rejected at registration time with a clear error instead of wedging the run.

**Why replay digests are shard-count-invariant.** Every entry carries a
globally unique ``(time, seq)`` key assigned at scheduling time.  A window
only commits events strictly below the live minimum of all other shards'
heads, and that bound is maintained under the only operations that can
introduce earlier work elsewhere (cross-shard scheduling tightens it;
cancellation only removes work).  By induction the commit sequence is exactly
the ascending ``(time, seq)`` total order — independent of the shard count
and identical to the serial kernel — so event ordering at each host, the
event log, and therefore the replay digest are byte-identical for 1, 2, 4,
or 8 shards.  ``tests/test_sharded_determinism.py`` pins this against the
golden digests recorded from the serial backend.

Shards here are engine structures, not OS processes: Python callbacks over a
shared object graph keep commit single-threaded, so wall-clock speedup is
bounded by per-event bookkeeping, and what this backend buys today is the
partitioning/synchronization layer (validated against the serial goldens)
plus per-shard parallelism headroom accounting.  The real-network execution
backend (ROADMAP item 3) is where shards become actual workers; the protocol
and its tests carry over unchanged.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.netsim.kernel import _COMPACT_MIN, Simulator, _Entry
from repro.util.errors import SimulationError
from repro.util.hashing import ConsistentHashRing


class _HashRing:
    """Consistent-hash ring mapping host names to shard indices.

    Consistent hashing keeps almost every host→shard assignment stable when
    the shard count changes — the property that makes shard-count sweeps
    (and, later, elastic re-sharding) cheap to reason about.  The ring
    itself lives in :mod:`repro.util.hashing` (shared with the scheduler's
    leader hierarchy); node names ``shard-{i}`` keep the virtual points —
    and therefore every host→shard assignment and shard stat — identical
    to the ones recorded before the extraction.
    """

    def __init__(self, shards: int) -> None:
        self._ring = ConsistentHashRing([f"shard-{index}" for index in range(shards)])

    def shard_of(self, host: str) -> int:
        return int(self._ring.lookup(host).removeprefix("shard-"))


class _Shard:
    """One worker shard: an event heap plus tombstone and clock state."""

    __slots__ = ("index", "heap", "cancelled", "clock", "committed", "hosts", "compactions")

    def __init__(self, index: int) -> None:
        self.index = index
        self.heap: list[_Entry] = []
        self.cancelled = 0  # tombstones currently in the heap
        self.clock = 0.0  # time of the last event this shard committed
        self.committed = 0
        self.hosts = 0
        self.compactions = 0

    def compact(self) -> None:
        """Drop tombstones in place (drain windows alias the heap list)."""
        heap = self.heap
        heap[:] = [e for e in heap if not e.cancelled]
        heapq.heapify(heap)
        self.cancelled = 0
        self.compactions += 1


class _ShardTimer:
    """Timer handle for an entry owned by one shard (same duck type as
    :class:`repro.netsim.kernel.Timer`)."""

    __slots__ = ("_entry", "_shard", "_sim")

    def __init__(self, entry: _Entry, shard: _Shard, sim: "ShardedSimulator") -> None:
        self._entry = entry
        self._shard = shard
        self._sim = sim

    def cancel(self) -> None:
        entry = self._entry
        if entry.cancelled or entry.fired:
            return
        entry.cancelled = True
        shard = self._shard
        if not shard.heap:
            # terminal: the shard has drained, the entry cannot be queued —
            # same no-op contract as the serial Timer
            return
        if not entry.daemon:
            self._sim._live_nondaemon -= 1
        shard.cancelled += 1
        if shard.cancelled > _COMPACT_MIN and shard.cancelled * 2 > len(shard.heap):
            shard.compact()

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled

    @property
    def time(self) -> float:
        return self._entry.time


class ShardedSimulator(Simulator):
    """Sharded conservative discrete-event backend (see module docstring).

    Args:
        seed: root seed, as for :class:`Simulator`.
        shards: number of worker shards hosts are partitioned across.
    """

    backend_name = "sharded"

    def __init__(self, seed: int = 0, shards: int = 4) -> None:
        if shards < 1:
            raise SimulationError(f"shard count must be >= 1, got {shards}")
        super().__init__(seed)
        self.shard_count = shards
        self._shards = [_Shard(i) for i in range(shards)]
        self._ring = _HashRing(shards) if shards > 1 else None
        self._host_shard: dict[str, int] = {}
        # conservative-sync state
        self._default_lookahead: float | None = None
        self._pair_lookahead: dict[tuple[int, int], float] = {}
        self._current: _Shard | None = None  # shard whose window is draining
        self._limit: _Entry | None = None  # min (time, seq) head of the others
        # protocol accounting (see shard_stats)
        self.cross_shard_events = 0
        self.limit_tightenings = 0
        self.windows = 0

    # -- host / lookahead topology ----------------------------------------

    def shard_of(self, host: str) -> int:
        """Shard index owning *host* (consistent hash, cached)."""
        index = self._host_shard.get(host)
        if index is None:
            index = self._ring.shard_of(host) if self._ring is not None else 0
            self._host_shard[host] = index
        return index

    def register_host(self, name: str) -> None:
        shard = self._shards[self.shard_of(name)]
        shard.hosts += 1

    def register_default_lookahead(self, lookahead: float) -> None:
        if self.shard_count > 1 and lookahead <= 0.0:
            raise SimulationError(
                "zero-lookahead link: the default latency model has "
                f"base_latency={lookahead!r}, so shards could exchange "
                "messages with no time in between and conservative "
                "synchronization would deadlock; give links a positive base "
                "latency or use the serial backend"
            )
        self._default_lookahead = lookahead

    def register_lookahead(self, host_a: str, host_b: str, lookahead: float) -> None:
        a, b = self.shard_of(host_a), self.shard_of(host_b)
        if a == b:
            return  # intra-shard link: no channel, no lookahead constraint
        if lookahead <= 0.0:
            raise SimulationError(
                f"zero-lookahead link {host_a!r}–{host_b!r} crosses shards "
                f"{a} and {b}: conservative synchronization would deadlock; "
                "give the route a positive base latency or use the serial "
                "backend"
            )
        for key in ((a, b), (b, a)):
            known = self._pair_lookahead.get(key)
            if known is None or lookahead < known:
                self._pair_lookahead[key] = lookahead

    def lookahead_between(self, src_shard: int, dst_shard: int) -> float | None:
        """Minimum delay any event can take from *src_shard* into
        *dst_shard* — the channel's conservative bound."""
        pair = self._pair_lookahead.get((src_shard, dst_shard))
        default = self._default_lookahead
        if pair is None:
            return default
        if default is None:
            return pair
        return min(pair, default)

    def horizon(self, shard_index: int) -> float | None:
        """How far shard *shard_index* could safely advance on channel
        bounds alone: ``min(peer clock + lookahead)`` over incoming
        channels.  None when unconstrained (single shard or no registered
        lookahead) — the figure a distributed deployment would gate on, and
        the per-shard parallelism headroom reported by :meth:`shard_stats`."""
        bound: float | None = None
        for peer in self._shards:
            if peer.index == shard_index:
                continue
            lookahead = self.lookahead_between(peer.index, shard_index)
            if lookahead is None:
                continue
            channel_bound = peer.clock + lookahead
            if bound is None or channel_bound < bound:
                bound = channel_bound
        return bound

    # -- scheduling --------------------------------------------------------

    def _target_shard(self, host: str | None) -> _Shard:
        if host is not None:
            return self._shards[self.shard_of(host)]
        # untagged events stay on the shard whose window is draining (the
        # scheduling context); outside a window they are control-plane
        # events and land on shard 0
        current = self._current
        return current if current is not None else self._shards[0]

    def _push(self, entry: _Entry, shard: _Shard) -> None:
        heapq.heappush(shard.heap, entry)
        current = self._current
        if current is not None and shard is not current:
            # a cross-shard injection during a drain window: tighten the
            # window bound in place — the shared-memory analogue of a null
            # message announcing earlier work on another shard
            self.cross_shard_events += 1
            limit = self._limit
            if limit is None or entry < limit:
                self._limit = entry
                self.limit_tightenings += 1

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        daemon: bool = False,
        host: str | None = None,
    ) -> _ShardTimer:
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, callback, daemon=daemon, host=host)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        daemon: bool = False,
        host: str | None = None,
    ) -> _ShardTimer:
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        entry = _Entry(time, seq, seq if not self._tie_mix else self._skey(seq),
                       callback, daemon)
        hb = self.hb
        if hb is not None:
            parents = hb._parents
            entry.hb = len(parents)
            parents.append(hb._current)
            hb._node_hosts.append(host)
        shard = self._target_shard(host)
        self._push(entry, shard)
        if not daemon:
            self._live_nondaemon += 1
        return _ShardTimer(entry, shard, self)

    def call_soon(
        self,
        callback: Callable[[], None],
        daemon: bool = False,
        host: str | None = None,
    ) -> _ShardTimer:
        seq = self._seq
        self._seq = seq + 1
        entry = _Entry(self._now, seq, seq if not self._tie_mix else self._skey(seq),
                       callback, daemon)
        hb = self.hb
        if hb is not None:
            parents = hb._parents
            entry.hb = len(parents)
            parents.append(hb._current)
            hb._node_hosts.append(host)
        shard = self._target_shard(host)
        self._push(entry, shard)
        if not daemon:
            self._live_nondaemon += 1
        return _ShardTimer(entry, shard, self)

    # -- selection ---------------------------------------------------------

    @staticmethod
    def _head(shard: _Shard) -> _Entry | None:
        """Live head of *shard*'s heap, discarding tombstones."""
        heap = shard.heap
        while heap:
            head = heap[0]
            if not head.cancelled:
                return head
            heapq.heappop(heap)
            shard.cancelled -= 1
        return None

    def _select(self) -> tuple[_Shard | None, _Entry | None]:
        """The shard owning the globally minimal (time, seq) entry — always
        safe to commit — plus the minimal head among the *other* shards
        (the drain window's channel bound)."""
        best_shard: _Shard | None = None
        best: _Entry | None = None
        second: _Entry | None = None
        for shard in self._shards:
            head = self._head(shard)
            if head is None:
                continue
            if best is None or head < best:
                second = best
                best = head
                best_shard = shard
            elif second is None or head < second:
                second = head
        return best_shard, second

    # -- running -----------------------------------------------------------

    def step(self) -> bool:
        shard, _ = self._select()
        if shard is None:
            return False
        entry = heapq.heappop(shard.heap)
        if entry.time < self._now:
            raise SimulationError("event queue produced time in the past")
        entry.fired = True
        if not entry.daemon:
            self._live_nondaemon -= 1
        self._now = entry.time
        self._events_processed += 1
        shard.committed += 1
        shard.clock = entry.time
        hb = self.hb
        if hb is not None:
            hb._current = entry.hb
        if self._tie_mix:
            self._firing_seq = entry.seq
        self._current = shard
        try:
            entry.callback()
        finally:
            self._current = None
            self._limit = None
        return True

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
        stop_when: Callable[[], bool] | None = None,
    ) -> float:
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        processed = 0
        stopped_early = False
        heappop = heapq.heappop
        # sanitizer seams, hoisted exactly as in the serial kernel
        hb = self.hb
        mix = self._tie_mix
        try:
            while True:
                shard, limit = self._select()
                if shard is None:
                    break
                heap = shard.heap  # compaction mutates in place; alias is safe
                entry = heap[0]
                t = entry.time
                if until is not None:
                    if t > until:
                        break
                elif self._live_nondaemon == 0:
                    break  # only daemon events (monitors/samplers) remain
                if t < self._now:
                    raise SimulationError("event queue produced time in the past")
                self._now = t
                # Drain window: commit this shard's events while they precede
                # every other shard's head.  Unlike the serial batch this may
                # advance time mid-window — the bound guarantees no other
                # shard owns earlier work, and cross-shard scheduling inside
                # a callback tightens the bound in place (_push).
                self.windows += 1
                self._current = shard
                self._limit = limit
                while True:
                    heappop(heap)
                    entry.fired = True
                    if not entry.daemon:
                        self._live_nondaemon -= 1
                    self._events_processed += 1
                    shard.committed += 1
                    shard.clock = entry.time
                    if hb is not None:
                        hb._current = entry.hb
                    if mix:
                        self._firing_seq = entry.seq
                    entry.callback()
                    processed += 1
                    if stop_when is not None and stop_when():
                        stopped_early = True
                        break
                    if max_events is not None and processed >= max_events:
                        raise SimulationError(
                            f"max_events={max_events} exceeded; possible livelock"
                        )
                    head = self._head(shard)
                    if head is None:
                        break
                    limit = self._limit
                    if limit is not None and not head < limit:
                        break  # the window's channel bound: yield to a peer
                    tt = head.time
                    if until is not None and tt > until:
                        break
                    if until is None and self._live_nondaemon == 0:
                        break
                    self._now = tt
                    entry = head
                self._current = None
                self._limit = None
                if stopped_early:
                    break
            if not stopped_early and until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
            self._current = None
            self._limit = None
        return self._now

    def _peek_time(self) -> float | None:
        heads = [self._head(shard) for shard in self._shards]
        times = [head.time for head in heads if head is not None]
        return min(times) if times else None

    # -- observation -------------------------------------------------------

    @property
    def pending(self) -> int:
        return sum(len(s.heap) - s.cancelled for s in self._shards)

    @property
    def compactions(self) -> int:
        return sum(s.compactions for s in self._shards)

    def shard_stats(self) -> dict:
        """Protocol observability: per-shard commit/clock/backlog state with
        conservative horizons, plus channel-traffic totals."""
        events = self._events_processed
        return {
            "backend": self.backend_name,
            "shards": self.shard_count,
            "events": events,
            "windows": self.windows,
            "events_per_window": round(events / self.windows, 2) if self.windows else 0.0,
            "cross_shard_events": self.cross_shard_events,
            "limit_tightenings": self.limit_tightenings,
            "per_shard": [
                {
                    "shard": shard.index,
                    "hosts": shard.hosts,
                    "events": shard.committed,
                    "clock": shard.clock,
                    "pending": len(shard.heap) - shard.cancelled,
                    "horizon": self.horizon(shard.index),
                }
                for shard in self._shards
            ],
        }
