"""Discrete-event network/host simulation kernel.

This is the substrate everything else runs on. The paper's prototype ran on
a workstation LAN; we replace the LAN with a deterministic simulator so that
scheduling, migration, and fault-tolerance experiments are exactly
reproducible (see DESIGN.md, substitution table).

Layering:

- :class:`SimBackend` — the backend seam: the event-loop contract, with
  :func:`create_simulator` selecting an implementation by name
  (``VCEConfig.backend``).
- :class:`Simulator` — the ``serial`` backend: a priority queue of
  timestamped callbacks, with cancellable timers.
- :class:`ShardedSimulator` — the ``sharded`` backend: hosts partitioned
  across per-shard event heaps with conservative lookahead synchronization
  (see docs/PARALLELISM.md); replay digests stay backend-invariant.
- :class:`Host` — a simulated machine that owns named :class:`SimProcess`
  actors, can crash and recover.
- :class:`Network` — delivers messages between hosts under a configurable
  latency/bandwidth/jitter model, with partitions and probabilistic loss for
  fault experiments.
- :class:`SimProcess` — the actor base class: ``on_message`` / ``on_timer``
  handlers plus ``send`` and ``set_timer`` effects.
"""

from repro.netsim.backend import BACKEND_NAMES, SimBackend, create_simulator
from repro.netsim.kernel import Simulator, Timer
from repro.netsim.network import Network, LatencyModel, Message
from repro.netsim.host import Host, Address
from repro.netsim.process import SimProcess
from repro.netsim.sharded import ShardedSimulator

__all__ = [
    "BACKEND_NAMES",
    "SimBackend",
    "create_simulator",
    "Simulator",
    "ShardedSimulator",
    "Timer",
    "Network",
    "LatencyModel",
    "Message",
    "Host",
    "Address",
    "SimProcess",
]
