"""The serial discrete-event backend (the default ``SimBackend``).

A :class:`Simulator` holds a heap of ``(time, sequence, callback)`` entries.
The sequence number breaks ties so that events scheduled earlier at the same
timestamp run earlier — a deterministic total order, which is essential for
reproducible experiments.  The same total order is the backend contract
(:class:`repro.netsim.backend.SimBackend`): any backend — this serial heap or
the sharded engine in :mod:`repro.netsim.sharded` — commits events in
``(time, seq)`` order, which is why replay digests are backend-invariant.

The loop is a hot path: every message hop, timer tick, and compute slice in a
run goes through it.  Entries are ``__slots__`` objects with a hand-written
``__lt__`` (no per-comparison tuple allocation), ``pending`` is O(1) via a
cancelled-entry counter, and cancelled entries are compacted out of the heap
once they dominate it so cancel-heavy workloads (retry timers, heartbeat
reschedules) cannot grow the heap without bound.  None of this changes the
pop order — the (time, seq) total order is unique, so compaction and batching
are invisible to replay digests.

Two opt-in sanitizer seams ride the same hot path (both cost one predictable
branch per event when disabled):

- **Happens-before tracking** (``sim.hb``): when an
  :class:`repro.analysis.hb.HBTracker` is attached, every scheduled entry
  records the tracker node of the event that scheduled it, and the loop
  publishes the firing entry's node before its callback runs.  The resulting
  schedule-parent tree *is* the happens-before relation of the run (message
  send→receive, timer create→fire, and program order are all schedule
  edges), which the race detector queries.  The tracker only observes — it
  emits no events, so replay digests are unchanged with it attached.
- **Tie-shuffle** (:meth:`Simulator.set_tie_shuffle`): entries are ordered by
  ``(time, skey)`` where ``skey`` defaults to ``seq`` (byte-identical to the
  historical order).  A non-zero shuffle salt mixes the *scheduling parent's*
  sequence number into the high bits of ``skey``, permuting same-timestamp
  ties across different causal parents while preserving FIFO order among
  events scheduled by the same parent (the ``call_soon`` contract).  Any
  behavioural difference between salts is real order-dependence — the
  confirmation signal ``repro sanitize`` uses to classify races.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable

from repro.netsim.backend import SimBackend
from repro.util.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.registry import MetricsRegistry
from repro.util.eventlog import EventLog
from repro.util.ids import IdGenerator
from repro.util.rng import RngStreams

#: Compaction triggers when more than half the heap is cancelled tombstones,
#: but never below this floor — tiny heaps are cheaper to pop than to rebuild.
_COMPACT_MIN = 64


#: Knuth's multiplicative-hash constant; mixes the scheduling parent's seq
#: into the tie-shuffle sort key (bijective over 32 bits, so keys stay unique).
_TIE_MIX_MUL = 0x9E3779B1


class _Entry:
    __slots__ = ("time", "seq", "skey", "callback", "cancelled", "daemon", "fired", "hb")

    def __init__(
        self, time: float, seq: int, skey: int, callback: Callable[[], None], daemon: bool
    ) -> None:
        self.time = time
        self.seq = seq
        #: tie-break sort key — equals ``seq`` unless tie-shuffle is active
        self.skey = skey
        self.callback = callback
        self.cancelled = False
        self.daemon = daemon
        self.fired = False
        #: happens-before tracker node of the scheduling event (0 = root)
        self.hb = 0

    def __lt__(self, other: "_Entry") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.skey < other.skey


class Timer:
    """Handle to a scheduled event; supports cancellation.

    Cancellation is lazy: the heap entry is flagged and skipped when popped,
    which keeps ``cancel`` O(1) (amortised — see ``Simulator._compact``).
    """

    __slots__ = ("_entry", "_sim")

    def __init__(self, entry: _Entry, sim: "Simulator") -> None:
        self._entry = entry
        self._sim = sim

    def cancel(self) -> None:
        entry = self._entry
        if entry.cancelled or entry.fired:
            return
        entry.cancelled = True
        sim = self._sim
        if not sim._heap:
            # Terminal: the heap has fully drained, so this entry cannot be
            # queued anywhere a tombstone would be skipped from.  Counting
            # it would leave the cancelled-entry counter inconsistent with
            # an empty heap (``pending`` would go negative) and corrupt the
            # live-event count for later runs.  Mark it cancelled and stop.
            return
        if not entry.daemon:
            sim._live_nondaemon -= 1
        sim._cancelled_in_heap += 1
        if (
            sim._cancelled_in_heap > _COMPACT_MIN
            and sim._cancelled_in_heap * 2 > len(sim._heap)
        ):
            sim._compact()

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled

    @property
    def time(self) -> float:
        return self._entry.time


class Simulator(SimBackend):
    """A deterministic discrete-event simulator — the ``serial`` backend.

    Args:
        seed: root seed for every random stream derived from this run.

    The simulator also owns the run-wide :class:`EventLog`, the id generator,
    and the :class:`RngStreams` factory so that components created for one
    simulation never share state with another.
    """

    backend_name = "serial"
    #: shard count (the serial kernel is one shard by definition)
    shard_count = 1

    def __init__(self, seed: int = 0) -> None:
        self._heap: list[_Entry] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._events_processed = 0
        self._live_nondaemon = 0
        self._cancelled_in_heap = 0
        self._compactions = 0
        self.seed = seed
        self.log = EventLog()
        self.ids = IdGenerator()
        self.rng = RngStreams(seed)
        #: live metrics registry, installed by the telemetry service; None
        #: when telemetry is off — instrumented components must None-check
        self.telemetry: "MetricsRegistry | None" = None
        #: attached happens-before tracker (``repro.analysis.hb.HBTracker``)
        #: or None; instrumented components must None-check before noting
        #: accesses, and the scheduling/firing hot paths below feed it
        self.hb: Any = None
        # tie-shuffle state: 0 = historical (time, seq) order
        self._tie_mix = 0
        self._firing_seq = 0

    # -- time --------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    # -- sanitizer seams ---------------------------------------------------

    def set_tie_shuffle(self, salt: int) -> None:
        """Install a tie-shuffle *salt* (0 disables — the default order).

        With a non-zero salt, same-timestamp events whose *scheduling
        parents* differ are committed in a seeded pseudo-random permutation
        instead of scheduling order, while events scheduled by the same
        parent keep their FIFO order.  Every salt still yields a unique
        deterministic total order, so a shuffled run is itself perfectly
        reproducible — ``repro sanitize`` diffs runs across salts to confirm
        or clear suspected races.
        """
        if self._running:
            raise SimulationError("cannot change tie-shuffle while running")
        if salt < 0:
            raise SimulationError(f"tie-shuffle salt must be >= 0, got {salt}")
        self._tie_mix = salt & 0xFFFFFFFF

    def _skey(self, seq: int) -> int:
        """Sort key for a new entry (inlined in the scheduling fast paths)."""
        mix = self._tie_mix
        if not mix:
            return seq
        parent = ((self._firing_seq ^ mix) * _TIE_MIX_MUL) & 0xFFFFFFFF
        return (parent << 32) | (seq & 0xFFFFFFFF)

    # -- scheduling --------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        daemon: bool = False,
        host: str | None = None,
    ) -> Timer:
        """Run *callback* ``delay`` seconds from now. Returns a cancellable
        :class:`Timer`.

        A *daemon* event (periodic monitors, samplers) never keeps the
        simulation alive: ``run()`` without a deadline stops once only
        daemon events remain — the same contract as daemon threads.

        *host* attributes the event to a simulated host; the serial kernel
        ignores it (one heap serves every host), a partitioned backend uses
        it to pick the owning shard.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, callback, daemon=daemon, host=host)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        daemon: bool = False,
        host: str | None = None,
    ) -> Timer:
        """Run *callback* at absolute simulation time *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        entry = _Entry(time, seq, seq if not self._tie_mix else self._skey(seq),
                       callback, daemon)
        hb = self.hb
        if hb is not None:
            parents = hb._parents
            entry.hb = len(parents)
            parents.append(hb._current)
            hb._node_hosts.append(host)
        heapq.heappush(self._heap, entry)
        if not daemon:
            self._live_nondaemon += 1
        return Timer(entry, self)

    def call_soon(
        self,
        callback: Callable[[], None],
        daemon: bool = False,
        host: str | None = None,
    ) -> Timer:
        """Run *callback* at the current time, after already-queued events at
        this timestamp.  Fast path: skips the delay/deadline validation that
        ``schedule``/``schedule_at`` perform, since ``now`` is always legal.
        """
        seq = self._seq
        self._seq = seq + 1
        entry = _Entry(self._now, seq, seq if not self._tie_mix else self._skey(seq),
                       callback, daemon)
        hb = self.hb
        if hb is not None:
            parents = hb._parents
            entry.hb = len(parents)
            parents.append(hb._current)
            hb._node_hosts.append(host)
        heapq.heappush(self._heap, entry)
        if not daemon:
            self._live_nondaemon += 1
        return Timer(entry, self)

    # -- running -----------------------------------------------------------

    def step(self) -> bool:
        """Process the single next event. Returns False when the queue is
        empty."""
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            if entry.cancelled:
                self._cancelled_in_heap -= 1
                continue
            if entry.time < self._now:
                raise SimulationError("event queue produced time in the past")
            entry.fired = True
            if not entry.daemon:
                self._live_nondaemon -= 1
            self._now = entry.time
            self._events_processed += 1
            hb = self.hb
            if hb is not None:
                hb._current = entry.hb
            if self._tie_mix:
                self._firing_seq = entry.seq
            entry.callback()
            return True
        return False

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
        stop_when: Callable[[], bool] | None = None,
    ) -> float:
        """Run the event loop.

        Args:
            until: stop once simulation time would exceed this (the clock is
                advanced to ``until`` on a timed-out run).
            max_events: safety valve against livelock; raises
                :class:`SimulationError` when hit.
            stop_when: checked after every event; return True to stop.

        Returns the simulation time when the loop stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        processed = 0
        stopped_early = False
        heap = self._heap  # _compact mutates in place, so this alias is safe
        heappop = heapq.heappop
        # sanitizer seams, hoisted: both are fixed for the duration of a run
        # (attachment happens at VCE construction, set_tie_shuffle rejects
        # changes mid-run), so the disabled case costs one local check
        hb = self.hb
        mix = self._tie_mix
        try:
            while heap:
                entry = heap[0]
                if entry.cancelled:
                    heappop(heap)
                    self._cancelled_in_heap -= 1
                    continue
                t = entry.time
                if until is not None:
                    if t > until:
                        break
                elif self._live_nondaemon == 0:
                    break  # only daemon events (monitors/samplers) remain
                if t < self._now:
                    raise SimulationError("event queue produced time in the past")
                self._now = t
                # Drain the whole batch at timestamp t: the `until` bound and
                # past-time check hold for every entry in it, so only the
                # cheap per-event conditions are re-checked inside.
                while True:
                    heappop(heap)
                    entry.fired = True
                    if not entry.daemon:
                        self._live_nondaemon -= 1
                    self._events_processed += 1
                    if hb is not None:
                        hb._current = entry.hb
                    if mix:
                        self._firing_seq = entry.seq
                    entry.callback()
                    processed += 1
                    if stop_when is not None and stop_when():
                        stopped_early = True
                        break
                    if max_events is not None and processed >= max_events:
                        raise SimulationError(
                            f"max_events={max_events} exceeded; possible livelock"
                        )
                    if not heap:
                        break
                    entry = heap[0]
                    if entry.cancelled or entry.time != t:
                        break
                    if until is None and self._live_nondaemon == 0:
                        break
                if stopped_early:
                    break
            if not stopped_early and until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
        return self._now

    def _peek_time(self) -> float | None:
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            self._cancelled_in_heap -= 1
        return heap[0].time if heap else None

    def _compact(self) -> None:
        """Drop cancelled tombstones and re-heapify, in place.

        In-place (slice assignment) because ``run`` holds an alias to the
        heap list across callbacks, and a callback may cancel enough timers
        to trigger compaction mid-loop.  Rebuilding preserves the pop order:
        (time, skey) keys are unique (skey is seq, or a bijective mix of it
        under tie-shuffle), so any valid heap over the same live entries
        pops identically.
        """
        heap = self._heap
        heap[:] = [e for e in heap if not e.cancelled]
        heapq.heapify(heap)
        self._cancelled_in_heap = 0
        self._compactions += 1

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled queued events.  O(1)."""
        return len(self._heap) - self._cancelled_in_heap

    @property
    def compactions(self) -> int:
        """How many times the heap has been compacted (instrumentation)."""
        return self._compactions

    # -- convenience -------------------------------------------------------

    def emit(self, category: str, source: str, **data: Any) -> None:
        """Shorthand for ``self.log.emit(self.now, ...)``."""
        self.log.emit(self._now, category, source, **data)
