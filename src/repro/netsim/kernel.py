"""The discrete-event loop.

A :class:`Simulator` holds a heap of ``(time, sequence, callback)`` entries.
The sequence number breaks ties so that events scheduled earlier at the same
timestamp run earlier — a deterministic total order, which is essential for
reproducible experiments.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.util.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.registry import MetricsRegistry
from repro.util.eventlog import EventLog
from repro.util.ids import IdGenerator
from repro.util.rng import RngStreams


@dataclass(order=True)
class _Entry:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    daemon: bool = field(default=False, compare=False)


class Timer:
    """Handle to a scheduled event; supports cancellation.

    Cancellation is lazy: the heap entry is flagged and skipped when popped,
    which keeps ``cancel`` O(1).
    """

    __slots__ = ("_entry", "_sim")

    def __init__(self, entry: _Entry, sim: "Simulator") -> None:
        self._entry = entry
        self._sim = sim

    def cancel(self) -> None:
        if not self._entry.cancelled:
            self._entry.cancelled = True
            if not self._entry.daemon:
                self._sim._live_nondaemon -= 1

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled

    @property
    def time(self) -> float:
        return self._entry.time


class Simulator:
    """A deterministic discrete-event simulator.

    Args:
        seed: root seed for every random stream derived from this run.

    The simulator also owns the run-wide :class:`EventLog`, the id generator,
    and the :class:`RngStreams` factory so that components created for one
    simulation never share state with another.
    """

    def __init__(self, seed: int = 0) -> None:
        self._heap: list[_Entry] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._events_processed = 0
        self._live_nondaemon = 0
        self.seed = seed
        self.log = EventLog()
        self.ids = IdGenerator()
        self.rng = RngStreams(seed)
        #: live metrics registry, installed by the telemetry service; None
        #: when telemetry is off — instrumented components must None-check
        self.telemetry: "MetricsRegistry | None" = None

    # -- time --------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    # -- scheduling --------------------------------------------------------

    def schedule(
        self, delay: float, callback: Callable[[], None], daemon: bool = False
    ) -> Timer:
        """Run *callback* ``delay`` seconds from now. Returns a cancellable
        :class:`Timer`.

        A *daemon* event (periodic monitors, samplers) never keeps the
        simulation alive: ``run()`` without a deadline stops once only
        daemon events remain — the same contract as daemon threads.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, callback, daemon=daemon)

    def schedule_at(
        self, time: float, callback: Callable[[], None], daemon: bool = False
    ) -> Timer:
        """Run *callback* at absolute simulation time *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        entry = _Entry(time, self._seq, callback, daemon=daemon)
        self._seq += 1
        heapq.heappush(self._heap, entry)
        if not daemon:
            self._live_nondaemon += 1
        return Timer(entry, self)

    def call_soon(self, callback: Callable[[], None]) -> Timer:
        """Run *callback* at the current time, after already-queued events at
        this timestamp."""
        return self.schedule(0.0, callback)

    # -- running -----------------------------------------------------------

    def step(self) -> bool:
        """Process the single next event. Returns False when the queue is
        empty."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                continue
            if entry.time < self._now:
                raise SimulationError("event queue produced time in the past")
            if not entry.daemon:
                self._live_nondaemon -= 1
            self._now = entry.time
            self._events_processed += 1
            entry.callback()
            return True
        return False

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
        stop_when: Callable[[], bool] | None = None,
    ) -> float:
        """Run the event loop.

        Args:
            until: stop once simulation time would exceed this (the clock is
                advanced to ``until`` on a timed-out run).
            max_events: safety valve against livelock; raises
                :class:`SimulationError` when hit.
            stop_when: checked after every event; return True to stop.

        Returns the simulation time when the loop stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        processed = 0
        stopped_early = False
        try:
            while True:
                next_time = self._peek_time()
                if next_time is None:
                    break
                if until is None and self._live_nondaemon == 0:
                    break  # only daemon events (monitors/samplers) remain
                if until is not None and next_time > until:
                    break
                self.step()
                processed += 1
                if stop_when is not None and stop_when():
                    stopped_early = True
                    break
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"max_events={max_events} exceeded; possible livelock"
                    )
            if not stopped_early and until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
        return self._now

    def _peek_time(self) -> float | None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled queued events."""
        return sum(1 for e in self._heap if not e.cancelled)

    # -- convenience -------------------------------------------------------

    def emit(self, category: str, source: str, **data: Any) -> None:
        """Shorthand for ``self.log.emit(self.now, ...)``."""
        self.log.emit(self._now, category, source, **data)
