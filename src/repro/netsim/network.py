"""Message transport between hosts.

The network charges each message a latency drawn from a
:class:`LatencyModel` (fixed base + size/bandwidth + seeded jitter), honours
partitions (no delivery across partition boundaries), and can drop,
duplicate, reorder, and slow messages probabilistically for fault
experiments — every fault decision comes from a named seeded RNG stream,
so a run replays byte-identically under the same seed.

Delivery between two processes on the *same* host bypasses the wire and costs
:attr:`LatencyModel.local_latency` — the paper's LAN prototype similarly
distinguishes local procedure calls from remote messages.

Two transport modes:

- **datagram** (default): the historical behaviour — a dropped or
  partition-blocked message is gone, duplicates arrive twice, reordering
  is visible to the receiver. Protocols above (Isis retransmission,
  execution-program retries) carry the recovery burden.
- **reliable** (``set_reliable()``): a TCP-like layer under the chaos
  harness. Every cross-host message gets a per-``(src host, dst host)``
  sequence number; a drop or partition block schedules a retransmission
  after an exponentially backed-off RTO instead of losing the message;
  the receiving side holds a reorder buffer that delivers strictly in
  sequence order and absorbs duplicates. A message that stays
  undeliverable for :attr:`TransportConfig.max_retries` attempts is
  *abandoned* (``net.lost``) and its sequence slot released so later
  traffic is not wedged behind the gap. Faults then surface as latency —
  which is exactly what makes "all tasks complete exactly once, makespan
  degrades gracefully" a testable property of the layers above.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.netsim.backend import SimBackend
from repro.netsim.host import Address, Host
from repro.util.errors import SimulationError


@dataclass(frozen=True, slots=True)
class Message:
    """A message in flight.

    Attributes:
        src: sender address.
        dst: recipient address.
        payload: arbitrary application object (never serialized — the sim
            moves references; *size* models the wire cost).
        size: bytes charged to the bandwidth model.
    """

    src: Address
    dst: Address
    payload: Any
    size: int = 256


@dataclass
class LatencyModel:
    """Per-message delay model.

    ``delay = base_latency + size / bandwidth + U(0, jitter)``

    Defaults approximate a early-1990s 10 Mb/s Ethernet LAN with ~1 ms
    software overhead, matching the environment of the paper's prototype.
    """

    base_latency: float = 1e-3
    bandwidth: float = 1.25e6  # bytes/second (10 Mb/s)
    jitter: float = 2e-4
    local_latency: float = 5e-5

    def delay(self, size: int, jitter_draw: float) -> float:
        return self.base_latency + size / self.bandwidth + jitter_draw * self.jitter


@dataclass
class TransportConfig:
    """Reliable-transport timing (see module docstring).

    Attributes:
        rto: first retransmission timeout after a lost attempt (s).
        backoff: RTO multiplier per consecutive failed attempt.
        max_rto: ceiling on the backed-off RTO.
        max_retries: attempts before the message is abandoned for good.
    """

    rto: float = 0.05
    backoff: float = 2.0
    max_rto: float = 5.0
    max_retries: int = 16

    def retry_delay(self, attempt: int) -> float:
        return min(self.max_rto, self.rto * self.backoff**attempt)


@dataclass
class _PairState:
    """Receiver-side ordering state for one (src host, dst host) pair."""

    next_seq: int = 0  # sender: next sequence number to assign
    deliver_next: int = 0  # receiver: next sequence expected
    buffer: dict = field(default_factory=dict)  # seq -> (message, size-less arrival)
    abandoned: set = field(default_factory=set)  # seqs the sender gave up on


class Network:
    """Connects hosts; schedules message deliveries on the simulator."""

    def __init__(
        self,
        sim: SimBackend,
        latency: LatencyModel | None = None,
        fifo: bool = True,
        egress_serialization: bool = False,
    ) -> None:
        """Args:
        fifo: when True (default), messages between a given host pair
            arrive in send order, as they would over a TCP connection —
            the ordering the Isis toolkit assumes of its transport.
        egress_serialization: when True, each host has one NIC: concurrent
            outgoing messages queue behind each other for their
            transmission time (size/bandwidth). Off by default — the
            plain model delivers every message independently, which is
            adequate for control traffic but understates the cost of
            fan-out-heavy data patterns like alltoall (ablated in
            benchmark E12b).
        """
        self.sim = sim
        self.latency = latency or LatencyModel()
        # the default link's base latency is the conservative lookahead a
        # partitioned backend may assume between any two hosts
        sim.register_default_lookahead(self.latency.base_latency)
        self.hosts: dict[str, Host] = {}
        self._rng = sim.rng.stream("network.jitter")
        self._drop_rng = sim.rng.stream("network.drop")
        self._dup_rng = sim.rng.stream("network.duplicate")
        self._reorder_rng = sim.rng.stream("network.reorder")
        self._drop_rate = 0.0
        self._duplicate_rate = 0.0
        self._reorder_rate = 0.0
        self._reorder_spread = 0.01  # max extra seconds a reordered copy lags
        self._latency_factor = 1.0
        self._partitions: list[set[str]] | None = None
        self._fifo = fifo
        self._egress_serialization = egress_serialization
        self._egress_free: dict[str, float] = {}
        self._last_arrival: dict[tuple[str, str], float] = {}
        self._routes: dict[frozenset[str], LatencyModel] = {}
        self.transport: TransportConfig | None = None
        self._pairs: dict[tuple[str, str], _PairState] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.bytes_sent = 0
        self.retransmissions = 0
        self.duplicates_injected = 0
        self.duplicates_dropped = 0
        self.reorders_injected = 0
        self.messages_lost = 0

    # -- topology ------------------------------------------------------------

    def attach(self, host: Host) -> Host:
        if host.name in self.hosts:
            raise SimulationError(f"duplicate host name {host.name!r}")
        self.hosts[host.name] = host
        host.network = self
        self.sim.register_host(host.name)
        return host

    def add_host(self, name: str, speed: float = 1.0) -> Host:
        """Create and attach a host in one call."""
        return self.attach(Host(self.sim, name, speed))

    def host(self, name: str) -> Host:
        try:
            return self.hosts[name]
        except KeyError:
            raise SimulationError(f"unknown host {name!r}") from None

    def set_route(self, a: str, b: str, latency: LatencyModel) -> None:
        """Override the latency model for the (symmetric) pair *a*, *b* —
        e.g. a WAN link between hosts at different sites. A network of
        supercomputers across campuses is the VCE's motivating setting."""
        self._routes[frozenset((a, b))] = latency
        self.sim.register_lookahead(a, b, latency.base_latency)

    def latency_between(self, a: str, b: str) -> LatencyModel:
        return self._routes.get(frozenset((a, b)), self.latency)

    # -- fault knobs -----------------------------------------------------------

    def set_drop_rate(self, p: float) -> None:
        """Drop each cross-host message independently with probability *p*.
        Under the reliable transport a "drop" costs a retransmission round
        instead of losing the message."""
        if not 0.0 <= p <= 1.0:
            raise SimulationError(f"drop rate must be in [0,1], got {p}")
        self._drop_rate = p

    def set_duplicate_rate(self, p: float) -> None:
        """Deliver each cross-host message twice with probability *p* (the
        reliable transport's receiver absorbs the copy; datagram mode hands
        both to the process)."""
        if not 0.0 <= p <= 1.0:
            raise SimulationError(f"duplicate rate must be in [0,1], got {p}")
        self._duplicate_rate = p

    def set_reorder_rate(self, p: float, spread: float | None = None) -> None:
        """Give each cross-host message probability *p* of an extra delay of
        up to *spread* seconds that bypasses the FIFO clamp, so it can
        overtake or fall behind its neighbours."""
        if not 0.0 <= p <= 1.0:
            raise SimulationError(f"reorder rate must be in [0,1], got {p}")
        self._reorder_rate = p
        if spread is not None:
            if spread < 0:
                raise SimulationError(f"reorder spread must be >= 0, got {spread}")
            self._reorder_spread = spread

    def set_latency_factor(self, factor: float) -> None:
        """Scale every cross-host delay by *factor* (link congestion /
        latency-spike windows; 1.0 restores normal service)."""
        if factor <= 0:
            raise SimulationError(f"latency factor must be positive, got {factor}")
        self._latency_factor = factor

    @property
    def latency_factor(self) -> float:
        return self._latency_factor

    def set_reliable(self, config: TransportConfig | None = None) -> None:
        """Switch cross-host traffic to the sequenced reliable transport
        (see module docstring). Call before traffic starts; switching with
        messages in flight would renumber mid-stream."""
        self.transport = config or TransportConfig()

    def _pair(self, src_host: str, dst_host: str) -> _PairState:
        key = (src_host, dst_host)
        state = self._pairs.get(key)
        if state is None:
            state = self._pairs[key] = _PairState()
        return state

    def _tel_inc(self, name: str, help_text: str, n: int = 1) -> None:
        tel = self.sim.telemetry
        if tel is not None:
            tel.counter(name, help_text).inc(n)

    def partition(self, *groups: set[str] | frozenset[str] | list[str]) -> None:
        """Split the network: messages only flow within a group. Hosts not
        named in any group form an implicit final group."""
        named = [set(g) for g in groups]
        rest = set(self.hosts) - set().union(*named) if named else set(self.hosts)
        if rest:
            named.append(rest)
        self._partitions = named

    def heal(self) -> None:
        """Remove any partition."""
        self._partitions = None

    def _connected(self, a: str, b: str) -> bool:
        if self._partitions is None:
            return True
        for group in self._partitions:
            if a in group:
                return b in group
        return False

    # -- transport ---------------------------------------------------------------

    def send(self, src: Address, dst: Address, payload: Any, size: int = 256) -> None:
        """Send a message; delivery is scheduled per the latency model.

        Sends to unknown hosts raise (a programming error); sends to crashed
        hosts or across a partition are silently dropped (a runtime
        condition the protocols must tolerate) — except under the reliable
        transport, which retransmits until delivered or abandoned.
        """
        message = Message(src, dst, payload, size)
        self.messages_sent += 1
        self.bytes_sent += size
        dst_host = self.host(dst.host)
        if src.host == dst.host:
            arrival = self.sim.now + self.latency.local_latency
            self.sim.schedule_at(
                arrival,
                lambda: self._finish_delivery(dst_host, message),
                host=dst.host,
            )
            return
        if self.transport is not None:
            state = self._pair(src.host, dst.host)
            seq = state.next_seq
            state.next_seq += 1
            self._transmit(message, seq, attempt=0)
            return
        # -- datagram path (the historical default) ------------------------
        if not self._connected(src.host, dst.host):
            self.sim.emit("net.partition_drop", src.host, dst=dst.host)
            return
        if self._drop_rate > 0.0 and self._drop_rng.random() < self._drop_rate:
            self.sim.emit("net.drop", src.host, dst=dst.host)
            return
        arrival = self.sim.now + self._wire_delay(src.host, dst.host, size)
        if self._reorder_rate > 0.0 and self._reorder_rng.random() < self._reorder_rate:
            # extra lag that skips the FIFO clamp: the copy can be overtaken
            self.reorders_injected += 1
            arrival += self._reorder_rng.random() * self._reorder_spread
            self.sim.emit("net.reorder", src.host, dst=dst.host)
        elif self._fifo:
            key = (src.host, dst.host)
            arrival = max(arrival, self._last_arrival.get(key, 0.0))
            self._last_arrival[key] = arrival
        self.sim.schedule_at(
            arrival, lambda: self._finish_delivery(dst_host, message), host=dst.host
        )
        if self._duplicate_rate > 0.0 and self._dup_rng.random() < self._duplicate_rate:
            self.duplicates_injected += 1
            self.sim.emit("net.duplicate", src.host, dst=dst.host)
            copy_at = arrival + self.latency.local_latency
            self.sim.schedule_at(
                copy_at, lambda: self._finish_delivery(dst_host, message), host=dst.host
            )

    def _wire_delay(self, src_host: str, dst_host: str, size: int) -> float:
        model = self.latency_between(src_host, dst_host)
        if self._egress_serialization:
            # one NIC per host: transmissions queue for the wire
            tx_start = max(self.sim.now, self._egress_free.get(src_host, 0.0))
            tx_done = tx_start + size / model.bandwidth
            self._egress_free[src_host] = tx_done
            delay = (
                (tx_done - self.sim.now)
                + model.base_latency
                + self._rng.random() * model.jitter
            )
        else:
            delay = model.delay(size, self._rng.random())
        return delay * self._latency_factor

    def _finish_delivery(self, dst_host: Host, message: Message) -> None:
        self.messages_delivered += 1
        dst_host.deliver(message)

    # -- reliable transport ----------------------------------------------------

    def _transmit(self, message: Message, seq: int, attempt: int) -> None:
        """One delivery attempt of a sequenced message; drops and partition
        blocks cost a backed-off retransmission round instead of the
        message."""
        cfg = self.transport
        assert cfg is not None
        src_host, dst_host = message.src.host, message.dst.host
        blocked = not self._connected(src_host, dst_host)
        if blocked:
            self.sim.emit("net.partition_drop", src_host, dst=dst_host, seq=seq)
        elif self._drop_rate > 0.0 and self._drop_rng.random() < self._drop_rate:
            self.sim.emit("net.drop", src_host, dst=dst_host, seq=seq)
            blocked = True
        if blocked:
            if attempt >= cfg.max_retries:
                self.messages_lost += 1
                self._tel_inc("net_lost_total", "messages abandoned after max retries")
                self.sim.emit(
                    "net.lost", src_host, dst=dst_host, seq=seq, attempts=attempt + 1
                )
                self._abandon(src_host, dst_host, seq)
                return
            self.retransmissions += 1
            self._tel_inc("net_retransmits_total", "reliable-transport retransmissions")
            self.sim.emit(
                "net.retransmit", src_host, dst=dst_host, seq=seq, attempt=attempt + 1
            )
            self.sim.schedule(
                cfg.retry_delay(attempt),
                lambda: self._transmit(message, seq, attempt + 1),
                host=src_host,  # the retransmit timer runs on the sender
            )
            return
        arrival = self.sim.now + self._wire_delay(src_host, dst_host, message.size)
        if self._reorder_rate > 0.0 and self._reorder_rng.random() < self._reorder_rate:
            self.reorders_injected += 1
            arrival += self._reorder_rng.random() * self._reorder_spread
            self.sim.emit("net.reorder", src_host, dst=dst_host, seq=seq)
        self.sim.schedule_at(arrival, lambda: self._arrive(message, seq), host=dst_host)
        if self._duplicate_rate > 0.0 and self._dup_rng.random() < self._duplicate_rate:
            self.duplicates_injected += 1
            self.sim.emit("net.duplicate", src_host, dst=dst_host, seq=seq)
            copy_at = arrival + self.latency.local_latency
            self.sim.schedule_at(copy_at, lambda: self._arrive(message, seq), host=dst_host)

    def _arrive(self, message: Message, seq: int) -> None:
        """Receiver side: dedup by sequence number, restore order, deliver."""
        state = self._pair(message.src.host, message.dst.host)
        if seq < state.deliver_next or seq in state.buffer or seq in state.abandoned:
            self.duplicates_dropped += 1
            self._tel_inc("net_dup_dropped_total", "duplicate deliveries absorbed")
            self.sim.emit(
                "net.dup_dropped", message.src.host, dst=message.dst.host, seq=seq
            )
            return
        state.buffer[seq] = message
        self._release(state)

    def _abandon(self, src_host: str, dst_host: str, seq: int) -> None:
        """Sender gave up on *seq*: release any successors wedged behind it."""
        state = self._pair(src_host, dst_host)
        if seq >= state.deliver_next:
            state.abandoned.add(seq)
            self._release(state)

    def _release(self, state: _PairState) -> None:
        while True:
            if state.deliver_next in state.buffer:
                message = state.buffer.pop(state.deliver_next)
                state.deliver_next += 1
                self._finish_delivery(self.host(message.dst.host), message)
            elif state.deliver_next in state.abandoned:
                state.abandoned.discard(state.deliver_next)
                state.deliver_next += 1
            else:
                return
