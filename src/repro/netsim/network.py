"""Message transport between hosts.

The network charges each message a latency drawn from a
:class:`LatencyModel` (fixed base + size/bandwidth + seeded jitter), honours
partitions (no delivery across partition boundaries), and can drop messages
probabilistically for fault experiments.

Delivery between two processes on the *same* host bypasses the wire and costs
:attr:`LatencyModel.local_latency` — the paper's LAN prototype similarly
distinguishes local procedure calls from remote messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.netsim.host import Address, Host
from repro.netsim.kernel import Simulator
from repro.util.errors import SimulationError


@dataclass(frozen=True, slots=True)
class Message:
    """A message in flight.

    Attributes:
        src: sender address.
        dst: recipient address.
        payload: arbitrary application object (never serialized — the sim
            moves references; *size* models the wire cost).
        size: bytes charged to the bandwidth model.
    """

    src: Address
    dst: Address
    payload: Any
    size: int = 256


@dataclass
class LatencyModel:
    """Per-message delay model.

    ``delay = base_latency + size / bandwidth + U(0, jitter)``

    Defaults approximate a early-1990s 10 Mb/s Ethernet LAN with ~1 ms
    software overhead, matching the environment of the paper's prototype.
    """

    base_latency: float = 1e-3
    bandwidth: float = 1.25e6  # bytes/second (10 Mb/s)
    jitter: float = 2e-4
    local_latency: float = 5e-5

    def delay(self, size: int, jitter_draw: float) -> float:
        return self.base_latency + size / self.bandwidth + jitter_draw * self.jitter


class Network:
    """Connects hosts; schedules message deliveries on the simulator."""

    def __init__(
        self,
        sim: Simulator,
        latency: LatencyModel | None = None,
        fifo: bool = True,
        egress_serialization: bool = False,
    ) -> None:
        """Args:
        fifo: when True (default), messages between a given host pair
            arrive in send order, as they would over a TCP connection —
            the ordering the Isis toolkit assumes of its transport.
        egress_serialization: when True, each host has one NIC: concurrent
            outgoing messages queue behind each other for their
            transmission time (size/bandwidth). Off by default — the
            plain model delivers every message independently, which is
            adequate for control traffic but understates the cost of
            fan-out-heavy data patterns like alltoall (ablated in
            benchmark E12b).
        """
        self.sim = sim
        self.latency = latency or LatencyModel()
        self.hosts: dict[str, Host] = {}
        self._rng = sim.rng.stream("network.jitter")
        self._drop_rng = sim.rng.stream("network.drop")
        self._drop_rate = 0.0
        self._partitions: list[set[str]] | None = None
        self._fifo = fifo
        self._egress_serialization = egress_serialization
        self._egress_free: dict[str, float] = {}
        self._last_arrival: dict[tuple[str, str], float] = {}
        self._routes: dict[frozenset[str], LatencyModel] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.bytes_sent = 0

    # -- topology ------------------------------------------------------------

    def attach(self, host: Host) -> Host:
        if host.name in self.hosts:
            raise SimulationError(f"duplicate host name {host.name!r}")
        self.hosts[host.name] = host
        host.network = self
        return host

    def add_host(self, name: str, speed: float = 1.0) -> Host:
        """Create and attach a host in one call."""
        return self.attach(Host(self.sim, name, speed))

    def host(self, name: str) -> Host:
        try:
            return self.hosts[name]
        except KeyError:
            raise SimulationError(f"unknown host {name!r}") from None

    def set_route(self, a: str, b: str, latency: LatencyModel) -> None:
        """Override the latency model for the (symmetric) pair *a*, *b* —
        e.g. a WAN link between hosts at different sites. A network of
        supercomputers across campuses is the VCE's motivating setting."""
        self._routes[frozenset((a, b))] = latency

    def latency_between(self, a: str, b: str) -> LatencyModel:
        return self._routes.get(frozenset((a, b)), self.latency)

    # -- fault knobs -----------------------------------------------------------

    def set_drop_rate(self, p: float) -> None:
        """Drop each cross-host message independently with probability *p*."""
        if not 0.0 <= p <= 1.0:
            raise SimulationError(f"drop rate must be in [0,1], got {p}")
        self._drop_rate = p

    def partition(self, *groups: set[str] | frozenset[str] | list[str]) -> None:
        """Split the network: messages only flow within a group. Hosts not
        named in any group form an implicit final group."""
        named = [set(g) for g in groups]
        rest = set(self.hosts) - set().union(*named) if named else set(self.hosts)
        if rest:
            named.append(rest)
        self._partitions = named

    def heal(self) -> None:
        """Remove any partition."""
        self._partitions = None

    def _connected(self, a: str, b: str) -> bool:
        if self._partitions is None:
            return True
        for group in self._partitions:
            if a in group:
                return b in group
        return False

    # -- transport ---------------------------------------------------------------

    def send(self, src: Address, dst: Address, payload: Any, size: int = 256) -> None:
        """Send a message; delivery is scheduled per the latency model.

        Sends to unknown hosts raise (a programming error); sends to crashed
        hosts or across a partition are silently dropped (a runtime
        condition the protocols must tolerate).
        """
        message = Message(src, dst, payload, size)
        self.messages_sent += 1
        self.bytes_sent += size
        dst_host = self.host(dst.host)
        if src.host == dst.host:
            delay = self.latency.local_latency
        else:
            if not self._connected(src.host, dst.host):
                self.sim.emit("net.partition_drop", src.host, dst=dst.host)
                return
            if self._drop_rate > 0.0 and self._drop_rng.random() < self._drop_rate:
                self.sim.emit("net.drop", src.host, dst=dst.host)
                return
            model = self.latency_between(src.host, dst.host)
            if self._egress_serialization:
                # one NIC per host: transmissions queue for the wire
                tx_start = max(self.sim.now, self._egress_free.get(src.host, 0.0))
                tx_done = tx_start + size / model.bandwidth
                self._egress_free[src.host] = tx_done
                delay = (
                    (tx_done - self.sim.now)
                    + model.base_latency
                    + self._rng.random() * model.jitter
                )
            else:
                delay = model.delay(size, self._rng.random())

        arrival = self.sim.now + delay
        if self._fifo and src.host != dst.host:
            key = (src.host, dst.host)
            arrival = max(arrival, self._last_arrival.get(key, 0.0))
            self._last_arrival[key] = arrival

        def _deliver() -> None:
            self.messages_delivered += 1
            dst_host.deliver(message)

        self.sim.schedule_at(arrival, _deliver)
