"""Sim-time → wall-time pacing for live streaming.

The simulator normally runs as fast as the host CPU allows; a live
dashboard wants simulated time to advance at a human-watchable rate.
:class:`WallClockPacer` maps simulated seconds onto wall-clock seconds at
a configurable *rate* and tells the serve driver how long to sleep
between simulation slices.

Pacing is strictly a presentation concern: it decides *when* the driver
calls ``sim.run``, never *what* the simulation computes, so enabling it
cannot perturb event order or replay digests.  That is why the wall-clock
reads below carry ``detlint: ok(D001)`` suppressions — they are outside
the deterministic core by construction.
"""

from __future__ import annotations

import time


class WallClockPacer:
    """Map simulated seconds to wall seconds at a fixed rate.

    Args:
        rate: simulated seconds per wall-clock second. ``0`` (or any
            non-positive value) means free-run: :meth:`sleep_for` always
            answers 0 and the driver advances as fast as it can.
    """

    def __init__(self, rate: float = 0.0) -> None:
        self.rate = rate
        self._origin_wall: float | None = None
        self._origin_sim = 0.0

    @property
    def free_running(self) -> bool:
        return self.rate <= 0.0

    def start(self, sim_now: float) -> None:
        """Anchor the schedule: *sim_now* corresponds to this wall instant."""
        self._origin_sim = sim_now
        self._origin_wall = time.perf_counter()  # detlint: ok(D001)

    def sleep_for(self, sim_now: float) -> float:
        """Wall seconds the driver should sleep before advancing past
        *sim_now* (0 when free-running, behind schedule, or not started)."""
        if self.free_running or self._origin_wall is None:
            return 0.0
        target_wall = self._origin_wall + (sim_now - self._origin_sim) / self.rate
        return max(0.0, target_wall - time.perf_counter())  # detlint: ok(D001)

    def resync(self, sim_now: float) -> None:
        """Re-anchor after a stall (e.g. a long blocking control action) so
        the pacer does not sprint to catch up on the lost wall time."""
        if self._origin_wall is not None:
            self.start(sim_now)
