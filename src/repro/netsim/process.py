"""Actor base class for simulated processes.

A :class:`SimProcess` lives on one :class:`~repro.netsim.host.Host`, reacts
to messages (``on_message``) and named timers (``on_timer``), and can send
messages and arm cancellable timers. All VCE runtime components — scheduler
daemons, task instances, the execution program — derive from it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.netsim.host import Address
from repro.netsim.kernel import Timer
from repro.util.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.host import Host
    from repro.netsim.kernel import Simulator


class SimProcess:
    """Base class for all simulated actors.

    Lifecycle hooks (override as needed):

    - ``on_start()`` — process attached to an up host.
    - ``on_message(src, payload)`` — a network message arrived.
    - ``on_timer(key)`` — a timer armed with ``set_timer`` fired.
    - ``on_stop()`` — killed deliberately (host still up).
    - ``on_crash()`` — host went down underneath us.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.host: "Host | None" = None
        self.alive = False
        self._timers: dict[str, Timer] = {}
        # address cache: built on first use, dropped on migration (adopt)
        self._addr: Address | None = None
        self._addr_str: str | None = None

    # -- plumbing (called by Host) -------------------------------------------

    def _bind(self, host: "Host") -> None:
        if self.host is not None:
            raise SimulationError(f"process {self.name!r} already bound")
        self.host = host

    def _start(self) -> None:
        if self.host is None or not self.host.up:
            return
        self.alive = True
        self.on_start()

    def _receive(self, message: Any) -> None:
        if self.alive:
            self.on_message(message.src, message.payload)

    def _fire(self, key: str) -> None:
        self._timers.pop(key, None)
        if self.alive:
            self.on_timer(key)

    def _stopped(self) -> None:
        self.alive = False
        self._cancel_all_timers()
        self.on_stop()

    def _crashed(self) -> None:
        self.alive = False
        self._cancel_all_timers()
        self.on_crash()

    def _cancel_all_timers(self) -> None:
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()

    # -- effects ---------------------------------------------------------------

    @property
    def sim(self) -> "Simulator":
        if self.host is None:
            raise SimulationError(f"process {self.name!r} not bound to a host")
        return self.host.sim

    @property
    def address(self) -> Address:
        addr = self._addr
        if addr is None:
            if self.host is None:
                raise SimulationError(f"process {self.name!r} not bound to a host")
            addr = self._addr = Address(self.host.name, self.name)
            self._addr_str = str(addr)
        return addr

    def _invalidate_address_cache(self) -> None:
        """Called when the process moves hosts (migration adopt)."""
        self._addr = None
        self._addr_str = None

    @property
    def now(self) -> float:
        return self.sim.now

    def send(self, dst: Address, payload: Any, size: int = 256) -> None:
        """Send a message through the network (dropped if we are dead)."""
        if not self.alive or self.host is None or self.host.network is None:
            return
        self.host.network.send(self.address, dst, payload, size)

    def set_timer(self, delay: float, key: str, daemon: bool = False) -> None:
        """Arm (or re-arm) the named timer; ``on_timer(key)`` fires once after
        *delay* seconds unless cancelled.

        A *daemon* timer (periodic samplers, monitors) never keeps the
        simulation alive — same contract as :meth:`Simulator.schedule`.
        """
        self.cancel_timer(key)
        self._timers[key] = self.sim.schedule(
            delay, lambda: self._fire(key), daemon=daemon, host=self.host.name
        )

    def cancel_timer(self, key: str) -> None:
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()

    def has_timer(self, key: str) -> bool:
        return key in self._timers

    def emit(self, category: str, **data: Any) -> None:
        """Write to the run-wide event log, tagged with this process."""
        source = self._addr_str
        if source is None:
            self.address  # populate the cache (raises if unbound)
            source = self._addr_str
        self.sim.emit(category, source, **data)

    # -- hooks -------------------------------------------------------------------

    def on_start(self) -> None:  # pragma: no cover - default no-op
        pass

    def on_message(self, src: Address, payload: Any) -> None:  # pragma: no cover
        pass

    def on_timer(self, key: str) -> None:  # pragma: no cover - default no-op
        pass

    def on_stop(self) -> None:  # pragma: no cover - default no-op
        pass

    def on_crash(self) -> None:  # pragma: no cover - default no-op
        pass

    def __repr__(self) -> str:  # pragma: no cover
        where = self.host.name if self.host else "<unbound>"
        return f"<{type(self).__name__} {self.name} on {where}>"
