"""The simulation-backend seam.

Everything above the kernel — hosts, network, processes, the whole VCE — talks
to the event loop through the interface defined here.  :class:`SimBackend`
names the contract every backend must honour; which implementation a run gets
is chosen by name (``VCEConfig.backend``) through :func:`create_simulator`.

Three backends ship today:

- ``serial`` — :class:`repro.netsim.kernel.Simulator`, the single tombstone
  heap.  The historical kernel, byte-identical replay digests, the default.
- ``sharded`` — :class:`repro.netsim.sharded.ShardedSimulator`, hosts
  partitioned into N shards by consistent hash, one event heap per shard,
  conservative synchronization with lookahead derived from link latencies
  (see docs/PARALLELISM.md).  Replay digests are shard-count-invariant and
  equal to the serial backend's.
- ``network`` — :class:`repro.netexec.wallclock.WallClockSimulator`, the
  wall-clock event loop under the real-process execution backend
  (``repro.netexec``, docs/NETWORK.md).  It keeps the scheduling/cancel/
  pending contract but paces by real time, so only task *outcomes* — not
  event interleavings — are digest-stable; it is driven by
  :class:`repro.netexec.supervisor.NetworkVCE`, not by the in-process
  :class:`~repro.core.environment.VirtualComputingEnvironment`.

The contract every backend must keep (the conformance suite in
``tests/test_backend_conformance.py`` enforces it against all backends):

- Events fire in exact ``(time, seq)`` order, where ``seq`` is the global
  scheduling order — a unique total order, so replay digests are
  backend-independent.
- ``call_soon`` entries at one timestamp fire FIFO, after already-queued
  events at that timestamp.
- ``cancel`` is lazy, idempotent, and a no-op on terminal entries (fired,
  already cancelled, or past any chance of being in a heap).
- ``pending`` equals the number of live (uncancelled, unfired) entries.
- Daemon events never keep ``run()`` alive.

Sanitizer seams (see :mod:`repro.analysis.hb` and docs/ANALYSIS.md) — two
further obligations every backend must honour so the happens-before race
sanitizer and the tie-shuffle harness work unchanged on top of it:

- **Schedule-parent feed.**  When a tracker is attached (``sim.hb`` is not
  None), every scheduling call allocates a tracker node recording the
  currently-firing event as its parent (``entry.hb = len(hb._parents);
  hb._parents.append(hb._current); hb._node_hosts.append(host)`` — or the
  :meth:`~repro.analysis.hb.HBTracker.on_schedule` method form), and every
  fire publishes its node (``hb._current = entry.hb``) before invoking the
  callback.  Ancestry in that tree is the happens-before relation; the
  tracker is a pure observer, so digests must be identical with it on.
- **Tie shuffle.**  ``set_tie_shuffle(salt)`` (non-zero *salt*) commits
  same-timestamp events whose scheduling parents differ in a seeded
  pseudo-random permutation instead of global scheduling order, while
  same-parent ties keep FIFO (the ``call_soon`` contract).  Every salt
  must yield a deterministic total order so shuffled runs are themselves
  reproducible; ``repro sanitize`` diffs outcome digests across salts to
  classify candidate races as real or benign.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable

from repro.util.errors import SimulationError

#: backend names accepted by :func:`create_simulator` / ``VCEConfig.backend``
BACKEND_NAMES = ("serial", "sharded", "network")

#: the virtual-time backends: exact (time, seq) total order, byte-identical
#: replay digests.  The ``network`` backend (repro.netexec) honours the
#: scheduling/cancel/pending contract but paces by the wall clock, so the
#: (time, seq)-order sections of the conformance suite apply only to these.
SIM_BACKEND_NAMES = ("serial", "sharded")


class SimBackend(ABC):
    """Abstract discrete-event backend (see module docstring).

    Timer objects returned by the scheduling calls are duck-typed: they
    expose ``cancel()``, ``cancelled``, and ``time``.
    """

    #: registry name of the concrete backend ("serial", "sharded", ...)
    backend_name: str = "?"

    # -- scheduling --------------------------------------------------------

    @abstractmethod
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        daemon: bool = False,
        host: str | None = None,
    ) -> Any:
        """Run *callback* ``delay`` seconds from now; returns a cancellable
        timer.  *host* attributes the event to a simulated host so a
        partitioned backend can place it on the right shard; backends that
        do not partition ignore it."""

    @abstractmethod
    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        daemon: bool = False,
        host: str | None = None,
    ) -> Any:
        """Run *callback* at absolute simulation time *time*."""

    @abstractmethod
    def call_soon(
        self,
        callback: Callable[[], None],
        daemon: bool = False,
        host: str | None = None,
    ) -> Any:
        """Run *callback* at the current time, after already-queued events
        at this timestamp (FIFO)."""

    def cancel(self, timer: Any) -> None:
        """Cancel a timer returned by a scheduling call (sugar for
        ``timer.cancel()``; kept on the interface so callers holding only
        the backend can cancel)."""
        timer.cancel()

    # -- running -----------------------------------------------------------

    @abstractmethod
    def step(self) -> bool:
        """Process the single next event; False when nothing is queued."""

    @abstractmethod
    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
        stop_when: Callable[[], bool] | None = None,
    ) -> float:
        """Run the loop; returns the simulation time when it stopped."""

    # -- observation -------------------------------------------------------

    @property
    @abstractmethod
    def now(self) -> float:
        """Current simulation time in seconds."""

    @property
    @abstractmethod
    def pending(self) -> int:
        """Number of live (uncancelled, unfired) queued events."""

    # -- topology hooks ----------------------------------------------------
    #
    # The network layer announces hosts and link latencies here.  A
    # partitioned backend uses them to map hosts onto shards and to derive
    # conservative lookahead per shard pair; the serial backend ignores
    # them.  Defaults are no-ops so plain Simulator stays zero-overhead.

    def register_host(self, name: str) -> None:
        """A host named *name* joined the simulated network."""

    def register_default_lookahead(self, lookahead: float) -> None:
        """Minimum cross-host message delay of the default link model."""

    def register_lookahead(self, host_a: str, host_b: str, lookahead: float) -> None:
        """Minimum message delay on the (symmetric) link *host_a*–*host_b*
        (a route override, e.g. a WAN hop)."""


def create_simulator(
    seed: int = 0, backend: str = "serial", shards: int = 4
) -> "SimBackend":
    """Build a simulator by backend name (the ``VCEConfig.backend`` seam).

    Args:
        seed: root seed for every random stream derived from the run.
        backend: one of :data:`BACKEND_NAMES`.
        shards: worker-shard count for the ``sharded`` backend (ignored by
            ``serial``).
    """
    if backend == "serial":
        from repro.netsim.kernel import Simulator

        return Simulator(seed)
    if backend == "sharded":
        from repro.netsim.sharded import ShardedSimulator

        return ShardedSimulator(seed, shards=shards)
    if backend == "network":
        from repro.netexec.wallclock import WallClockSimulator

        return WallClockSimulator(seed)
    raise SimulationError(
        f"unknown simulation backend {backend!r} "
        f"(expected one of {', '.join(BACKEND_NAMES)})"
    )
