"""Simulated hosts and process addressing.

A :class:`Host` is the simulation-level stand-in for one machine on the VCE
network. It owns named :class:`~repro.netsim.process.SimProcess` actors
(the VCE daemon, task instances, ...), a speed factor used by the compute
model, and an up/down state driven by the fault injector.

Machine *semantics* (architecture class, memory, object-code format) live in
``repro.machines.Machine``; the Host carries a reference to that description
once a cluster is built, keeping the network simulator ignorant of VCE
concepts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator

from repro.util.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.kernel import Simulator
    from repro.netsim.network import Network
    from repro.netsim.process import SimProcess


class Address:
    """Location of a process: ``(host name, process name)``.

    Immutable and hashable.  Addresses key the dicts on every message hop
    and membership check, so the hash is computed once at construction and
    equality short-circuits on identity (processes cache their own address,
    making identity hits the common case).
    """

    __slots__ = ("host", "proc", "_hash")

    def __init__(self, host: str, proc: str) -> None:
        object.__setattr__(self, "host", host)
        object.__setattr__(self, "proc", proc)
        object.__setattr__(self, "_hash", hash((host, proc)))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(f"Address is immutable (cannot set {name!r})")

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: Any) -> bool:
        if self is other:
            return True
        if type(other) is not Address:
            return NotImplemented
        return self.host == other.host and self.proc == other.proc

    def __reduce__(self) -> tuple[Any, ...]:
        return (Address, (self.host, self.proc))

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return f"Address(host={self.host!r}, proc={self.proc!r})"

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"{self.host}/{self.proc}"


class Host:
    """One simulated machine.

    Args:
        sim: the owning simulator.
        name: unique host name.
        speed: relative CPU speed (work units per second); the executor
            divides task work by this to get compute durations.
    """

    def __init__(self, sim: "Simulator", name: str, speed: float = 1.0) -> None:
        if speed <= 0:
            raise SimulationError(f"host speed must be positive, got {speed}")
        self.sim = sim
        self.name = name
        self.speed = speed
        self.up = True
        self.network: "Network | None" = None
        self.machine: Any = None  # repro.machines.Machine, attached by cluster builder
        self._processes: dict[str, "SimProcess"] = {}
        self._boot_count = 0  # incarnation number, bumped on recover

    # -- process management --------------------------------------------------

    def spawn(self, process: "SimProcess") -> Address:
        """Attach *process* to this host and start it."""
        if process.name in self._processes:
            raise SimulationError(
                f"process {process.name!r} already exists on host {self.name!r}"
            )
        self._processes[process.name] = process
        process._bind(self)
        if self.up:
            self.sim.call_soon(process._start, host=self.name)
        return process.address

    def adopt(self, process: "SimProcess") -> Address:
        """Move an already-running process onto this host, preserving its
        entire in-memory state (mailboxes, generators, timers).

        This is the simulation-level primitive behind address-space-dump
        migration: the process object *is* the address space. The caller is
        responsible for charging transfer time and rebinding channels.
        """
        if process.name in self._processes:
            raise SimulationError(
                f"process {process.name!r} already exists on host {self.name!r}"
            )
        if process.host is not None:
            process.host._processes.pop(process.name, None)
        process.host = self
        process._invalidate_address_cache()
        self._processes[process.name] = process
        return process.address

    def kill(self, proc_name: str) -> None:
        """Remove a process from this host (it gets an ``on_stop`` callback)."""
        process = self._processes.pop(proc_name, None)
        if process is not None:
            process._stopped()

    def reap(self, proc_name: str) -> None:
        """Remove a *dead* process without lifecycle callbacks (it already
        got ``on_crash``). Used when rebooting a daemon after a host crash:
        the old corpse must be cleared before ``spawn`` accepts the name
        again. No-op if the process is alive or absent."""
        process = self._processes.get(proc_name)
        if process is not None and not process.alive:
            del self._processes[proc_name]

    def process(self, name: str) -> "SimProcess | None":
        return self._processes.get(name)

    def processes(self) -> Iterator["SimProcess"]:
        return iter(list(self._processes.values()))

    # -- delivery ------------------------------------------------------------

    def deliver(self, message: Any) -> None:
        """Hand an arriving network message to the addressed process.

        Messages to a down host or a dead process are silently dropped —
        exactly what a real crashed machine does.
        """
        if not self.up:
            return
        process = self._processes.get(message.dst.proc)
        if process is not None:
            process._receive(message)

    # -- fault injection -------------------------------------------------------

    def crash(self) -> None:
        """Take the host down: every process is stopped, future deliveries and
        timers are dropped."""
        if not self.up:
            return
        self.up = False
        self.sim.emit("host.crash", self.name)
        for process in list(self._processes.values()):
            process._crashed()

    def recover(self) -> None:
        """Bring the host back up. Processes killed by the crash do not
        restart automatically — a recovering VCE machine reboots its daemon
        explicitly (done by the fault injector / cluster code)."""
        if self.up:
            return
        self.up = True
        self._boot_count += 1
        self.sim.emit("host.recover", self.name, incarnation=self._boot_count)

    @property
    def incarnation(self) -> int:
        return self._boot_count

    def __repr__(self) -> str:  # pragma: no cover
        state = "up" if self.up else "DOWN"
        return f"<Host {self.name} speed={self.speed} {state}>"
