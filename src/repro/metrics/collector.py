"""Metric derivation from the event log."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.util.eventlog import EventLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.network import Network


@dataclass(frozen=True, slots=True)
class MigrationStat:
    scheme: str
    latency: float
    src: str | None
    dst: str | None


class MetricsCollector:
    """Post-hoc analysis over one simulation's event log."""

    def __init__(self, log: EventLog, network: "Network | None" = None) -> None:
        self.log = log
        self.network = network

    # ------------------------------------------------------------- makespans

    def app_makespans(self) -> dict[str, float]:
        """app id → submit-to-done time for completed applications."""
        submits = {r.source: r.time for r in self.log.records(category="app.submit")}
        out = {}
        for record in self.log.records(category="app.done"):
            if record.source in submits:
                out[record.source] = record.time - submits[record.source]
        return out

    def throughput(self, horizon: float) -> float:
        """Completed applications per second over [0, horizon]."""
        done = [r for r in self.log.records(category="app.done") if r.time <= horizon]
        return len(done) / horizon if horizon > 0 else 0.0

    # ------------------------------------------------------------ utilization

    def busy_intervals(self) -> dict[str, list[tuple[float, float]]]:
        """host → merged [start, end) intervals with ≥1 VCE task present."""
        starts: dict[tuple, float] = {}
        raw: dict[str, list[tuple[float, float]]] = defaultdict(list)
        for record in self.log:
            if record.category == "task.start":
                key = (record.get("app"), record.get("task"), record.get("rank"), record.source)
                starts[key] = record.time
            elif record.category in ("task.done", "task.failed", "task.killed"):
                for key in [k for k in starts if k[:3] == (record.get("app"), record.get("task"), record.get("rank"))]:
                    host = record.get("host") or key[3].split("/")[0]
                    raw[host].append((starts.pop(key), record.time))
        return {host: _merge(intervals) for host, intervals in raw.items()}

    def utilization(self, horizon: float) -> dict[str, float]:
        """host → fraction of [0, horizon] spent hosting VCE tasks."""
        if horizon <= 0:
            return {}
        return {
            host: sum(e - s for s, e in intervals) / horizon
            for host, intervals in self.busy_intervals().items()
        }

    def mean_utilization(self, horizon: float, hosts: list[str]) -> float:
        per_host = self.utilization(horizon)
        if not hosts:
            return 0.0
        return sum(per_host.get(h, 0.0) for h in hosts) / len(hosts)

    # -------------------------------------------------------------- scheduler

    def allocation_latencies(self) -> list[float]:
        """Per request: exec.request → exec.reply time.

        Single pass over the log: replies carrying a ``req_id`` pair with
        their exact request; replies without one (older logs) pair FIFO
        with the oldest outstanding request from the same source.
        """
        by_req_id: dict[str, float] = {}
        pending: dict[str, list[tuple[str, float]]] = defaultdict(list)
        out = []
        for record in self.log:
            if record.category == "exec.request":
                req_id = record.get("req_id")
                if req_id is not None:
                    by_req_id[req_id] = record.time
                pending[record.source].append((req_id, record.time))
            elif record.category == "exec.reply":
                req_id = record.get("req_id")
                if req_id is not None and req_id in by_req_id:
                    out.append(record.time - by_req_id.pop(req_id))
                    queue = pending[record.source]
                    for i, (qid, _) in enumerate(queue):
                        if qid == req_id:
                            del queue[i]
                            break
                elif pending[record.source]:
                    qid, requested_at = pending[record.source].pop(0)
                    by_req_id.pop(qid, None)
                    out.append(record.time - requested_at)
        return out

    def bid_counts(self) -> list[int]:
        return [r.get("bids", 0) for r in self.log.records(category="sched.alloc")]

    def alloc_errors(self) -> int:
        return self.log.count("sched.alloc_error")

    def queue_waits(self) -> list[float]:
        return [r.get("waited", 0.0) for r in self.log.records(category="sched.retry")]

    # --------------------------------------------------------------- migration

    def migrations(self) -> list[MigrationStat]:
        return [
            MigrationStat(r.get("scheme"), r.get("latency", 0.0), r.get("src"), r.get("dst"))
            for r in self.log.records(category="migration.done")
        ]

    def migration_latency_by_scheme(self) -> dict[str, list[float]]:
        out: dict[str, list[float]] = defaultdict(list)
        for stat in self.migrations():
            out[stat.scheme].append(stat.latency)
        return dict(out)

    # -------------------------------------------------------------- suspension

    def suspension_spans(self) -> list[float]:
        """Durations of suspend→resume windows per instance (the raw
        material of the §4.3 ripple-effect measurement)."""
        open_suspends: dict[tuple, float] = {}
        spans = []
        for record in self.log:
            key = (record.get("app"), record.get("task"), record.get("rank"))
            if record.category == "task.suspend":
                open_suspends[key] = record.time
            elif record.category == "task.resume" and key in open_suspends:
                spans.append(record.time - open_suspends.pop(key))
        return spans

    # ----------------------------------------------------------------- network

    def message_totals(self) -> dict[str, int]:
        if self.network is None:
            return {}
        return {
            "sent": self.network.messages_sent,
            "delivered": self.network.messages_delivered,
            "bytes": self.network.bytes_sent,
        }


def _merge(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    if not intervals:
        return []
    ordered = sorted(intervals)
    out = [ordered[0]]
    for start, end in ordered[1:]:
        last_start, last_end = out[-1]
        if start <= last_end:
            out[-1] = (last_start, max(last_end, end))
        else:
            out.append((start, end))
    return out
