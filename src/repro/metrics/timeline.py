"""Per-host timelines and an ASCII Gantt renderer.

Turns the event log into a machine-utilization picture: which instance ran
where and when, where hosts were down, where work sat suspended. Useful
for eyeballing scheduler and migration behaviour from a terminal.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.eventlog import EventLog


@dataclass(frozen=True, slots=True)
class Span:
    """One activity interval on one host."""

    host: str
    label: str  # "app.task[rank]" or "DOWN"
    start: float
    end: float
    kind: str  # "task" | "down" | "suspended"


def build_timeline(log: EventLog, horizon: float | None = None) -> list[Span]:
    """Extract all task/down/suspension spans from a run's log."""
    spans: list[Span] = []
    horizon = horizon if horizon is not None else (log.records()[-1].time if len(log) else 0.0)

    open_tasks: dict[tuple, tuple[float, str]] = {}  # key -> (start, host)
    open_downs: dict[str, float] = {}
    open_suspends: dict[tuple, tuple[float, str]] = {}

    for record in log:
        key = (record.get("app"), record.get("task"), record.get("rank"))
        if record.category == "task.start":
            open_tasks[key] = (record.time, record.get("host", "?"))
        elif record.category in ("task.done", "task.failed", "task.killed"):
            if key in open_tasks:
                start, host = open_tasks.pop(key)
                label = f"{key[0]}.{key[1]}[{key[2]}]"
                spans.append(Span(record.get("host", host), label, start, record.time, "task"))
        elif record.category in ("host.crash",):
            open_downs[record.source] = record.time
        elif record.category in ("host.recover",):
            if record.source in open_downs:
                spans.append(
                    Span(record.source, "DOWN", open_downs.pop(record.source), record.time, "down")
                )
        elif record.category == "task.suspend":
            host = record.source.split("/")[0]
            open_suspends[key] = (record.time, host)
        elif record.category == "task.resume":
            if key in open_suspends:
                start, host = open_suspends.pop(key)
                label = f"{key[0]}.{key[1]}[{key[2]}]"
                spans.append(Span(host, label, start, record.time, "suspended"))

    for key, (start, host) in open_tasks.items():
        spans.append(Span(host, f"{key[0]}.{key[1]}[{key[2]}]", start, horizon, "task"))
    for host, start in open_downs.items():
        spans.append(Span(host, "DOWN", start, horizon, "down"))
    return sorted(spans, key=lambda s: (s.host, s.start))


def render_gantt(
    spans: list[Span],
    horizon: float,
    width: int = 72,
    hosts: list[str] | None = None,
) -> str:
    """ASCII Gantt: one row per host; ``#`` running, ``s`` suspended,
    ``x`` down, ``.`` idle."""
    if horizon <= 0:
        return "(empty timeline)"
    if hosts is None:
        hosts = sorted({s.host for s in spans})
    scale = width / horizon
    lines = [f"0{' ' * (width - len(str(round(horizon))) - 1)}{round(horizon)}s"]
    for host in hosts:
        row = ["."] * width
        for span in spans:
            if span.host != host:
                continue
            lo = max(0, min(width - 1, int(span.start * scale)))
            hi = max(lo + 1, min(width, int(span.end * scale)))
            char = {"task": "#", "down": "x", "suspended": "s"}[span.kind]
            for i in range(lo, hi):
                if char == "x" or row[i] == ".":
                    row[i] = char
        lines.append(f"{host:>12} |{''.join(row)}|")
    return "\n".join(lines)


def host_busy_fraction(spans: list[Span], horizon: float) -> dict[str, float]:
    """Fraction of the horizon each host spent running task spans."""
    out: dict[str, float] = {}
    for span in spans:
        if span.kind == "task":
            out[span.host] = out.get(span.host, 0.0) + (span.end - span.start)
    return {host: min(1.0, total / horizon) for host, total in out.items()} if horizon > 0 else {}
