"""Metrics: derived measurements and report formatting.

Everything is computed from the run-wide :class:`~repro.util.eventlog.EventLog`
(plus network counters), so instrumentation lives in one place and any
experiment can be re-analyzed after the fact.
"""

from repro.metrics.collector import MetricsCollector
from repro.metrics.report import format_table, format_series
from repro.metrics.timeline import Span, build_timeline, host_busy_fraction, render_gantt

__all__ = [
    "MetricsCollector",
    "format_table",
    "format_series",
    "Span",
    "build_timeline",
    "render_gantt",
    "host_busy_fraction",
]
