"""Plain-text tables and series for benchmark output."""

from __future__ import annotations

from typing import Any, Sequence


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Monospace table; the benchmark harness prints these as the paper's
    'tables'."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(row[i]) for row in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[Any], ys: Sequence[Any]) -> str:
    """A labelled x/y series — the paper's 'figures' in text form."""
    pairs = "  ".join(f"({_fmt(x)}, {_fmt(y)})" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"
