"""The health watchdog: rules over sampled telemetry.

Evaluated once per sampler tick, each rule inspects live state (never the
event log) and raises a :class:`HealthEvent` when its condition holds.
Events are edge-triggered — one ``health.<rule>`` record when a condition
becomes active, one ``health.cleared`` when it goes away — so a stuck
cluster does not flood the log at every tick.

Rules:

- **straggler** — a dispatched instance has been in flight more than
  ``straggler_factor`` x the (histogram-estimated) median duration of
  completed instances of the same task.
- **queue_saturation** — a daemon's pending-request queue has held
  ``queue_depth_threshold`` or more entries for ``queue_depth_ticks``
  consecutive samples.
- **bid_starvation** — a queued request has been waiting longer than
  ``starvation_wait`` seconds without winning an allocation.
- **alloc_errors** — ``sched_alloc_errors_total`` grew by at least
  ``alloc_error_threshold`` over the last ``alloc_error_window`` samples.
- **host_down** — a daemon machine is down (crashed and not yet
  recovered by the fault injector / chaos controller).
- **stranded** — an instance failed but its application is still running:
  the failover layer absorbed the crash and its re-dispatch is pending.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.manager import RuntimeManager
    from repro.scheduler.daemon import SchedulerDaemon
    from repro.telemetry.registry import Histogram, MetricsRegistry
    from repro.telemetry.series import SeriesStore

INFO = "info"
WARNING = "warning"
CRITICAL = "critical"

#: every rule the watchdog evaluates, in evaluation order — the canonical
#: key set of the ``rules`` map in :meth:`HealthWatchdog.snapshot`
RULES = (
    "straggler",
    "queue_saturation",
    "bid_starvation",
    "alloc_errors",
    "host_down",
    "stranded",
)

#: signature of the event sink: (category, severity, detail-fields)
EmitFn = Callable[..., None]


@dataclass
class WatchdogConfig:
    """Rule thresholds (see module docstring)."""

    straggler_factor: float = 3.0
    straggler_min_completed: int = 3
    straggler_min_elapsed: float = 1.0
    queue_depth_threshold: int = 4
    queue_depth_ticks: int = 3
    starvation_wait: float = 30.0
    alloc_error_window: int = 10
    alloc_error_threshold: int = 5


@dataclass(frozen=True, slots=True)
class HealthEvent:
    """One raised (or cleared) condition."""

    time: float
    rule: str
    key: str
    severity: str
    detail: dict = field(default_factory=dict)


def straggler_severity(
    elapsed: float, completed: "Histogram", config: WatchdogConfig
) -> str | None:
    """The straggler verdict for one in-flight instance, given the
    completed-duration histogram of its task. Pure — property-tested
    directly: on a uniform workload (all durations within the histogram's
    bucket growth factor of each other) it never fires, because an
    in-flight instance cannot outlive ``factor x`` the estimated median
    while its siblings finish on time."""
    if completed.count < config.straggler_min_completed:
        return None
    if elapsed < config.straggler_min_elapsed:
        return None
    median = completed.quantile(0.5)
    if median <= 0:
        return None
    if elapsed > 2 * config.straggler_factor * median:
        return CRITICAL
    if elapsed > config.straggler_factor * median:
        return WARNING
    return None


class HealthWatchdog:
    """See module docstring.

    Args:
        registry: live metrics registry (histograms feed the straggler
            baseline; ``health_events_total`` is incremented per event).
        runtime: runtime manager, or None to skip the straggler rule.
        daemons: host -> scheduler daemon (queue rules), may be empty.
        emit: event sink called as ``emit(category, severity=..., **detail)``
            — the VCE wires this to ``sim.emit(category, "watchdog", ...)``.
        config: rule thresholds.
    """

    def __init__(
        self,
        registry: "MetricsRegistry",
        runtime: "RuntimeManager | None",
        daemons: dict[str, "SchedulerDaemon"],
        emit: EmitFn | None = None,
        config: WatchdogConfig | None = None,
    ) -> None:
        self.registry = registry
        self.runtime = runtime
        self.daemons = daemons
        self.config = config or WatchdogConfig()
        self._emit = emit or (lambda category, **data: None)
        self._active: dict[tuple[str, str], HealthEvent] = {}
        self.events: list[HealthEvent] = []
        self.max_events = 200
        self._m_events = registry.counter(
            "health_events_total", "watchdog conditions raised", labels=("rule", "severity")
        )
        self._m_durations = registry.histogram(
            "task_duration_seconds", "dispatch to exit", labels=("task",)
        )
        # refreshed at each evaluation: chaos daemon restarts replace
        # entries in the (shared) daemons dict
        self._daemon_order = sorted(self.daemons.items())
        self._depth_series: dict[str, Any] = {}
        self._depth_store: Any = None

    # ------------------------------------------------------------- evaluation

    def evaluate(self, now: float, store: "SeriesStore") -> list[HealthEvent]:
        """Run every rule; returns the events newly raised this tick."""
        seen: set[tuple[str, str]] = set()
        raised: list[HealthEvent] = []
        self._daemon_order = sorted(self.daemons.items())

        for rule, key, severity, detail in self._conditions(now, store):
            seen.add((rule, key))
            if (rule, key) in self._active:
                continue
            event = HealthEvent(now, rule, key, severity, detail)
            self._active[(rule, key)] = event
            raised.append(event)
            self._record(event)
            self._emit(f"health.{rule}", severity=severity, key=key, **detail)

        for rule, key in [k for k in self._active if k not in seen]:
            self._active.pop((rule, key))
            cleared = HealthEvent(now, "cleared", key, INFO, {"rule": rule})
            self._record(cleared)
            self._emit("health.cleared", severity=INFO, key=key, rule=rule)
        return raised

    def _record(self, event: HealthEvent) -> None:
        self.events.append(event)
        if len(self.events) > self.max_events:
            del self.events[: len(self.events) - self.max_events]
        self._m_events.labels(event.rule, event.severity).inc()

    def active(self) -> list[HealthEvent]:
        """Currently-raised conditions, oldest first."""
        return sorted(self._active.values(), key=lambda e: e.time)

    def snapshot(self) -> dict:
        """JSON-able health state: the active conditions plus a per-rule
        summary covering every rule in :data:`RULES` (``host_down`` and
        ``stranded`` included even when quiet).  This is the one schema the
        ``repro top --json`` export and the control-plane dashboard share.
        """
        active = self.active()
        rules: dict[str, dict] = {
            rule: {"active": 0, "severity": None} for rule in RULES
        }
        for event in active:
            state = rules.setdefault(
                event.rule, {"active": 0, "severity": None}
            )
            state["active"] += 1
            if state["severity"] != CRITICAL:
                state["severity"] = (
                    CRITICAL if event.severity == CRITICAL else event.severity
                )
        return {
            "active": [
                {
                    "rule": e.rule,
                    "key": e.key,
                    "severity": e.severity,
                    "time": e.time,
                    "detail": dict(e.detail),
                }
                for e in active
            ],
            "rules": rules,
        }

    # ----------------------------------------------------------------- rules

    def _conditions(self, now: float, store: "SeriesStore"):
        yield from self._check_stragglers(now)
        yield from self._check_queue_saturation(store)
        yield from self._check_bid_starvation(now)
        yield from self._check_alloc_errors(store)
        yield from self._check_hosts_down()
        yield from self._check_stranded()

    def _check_stragglers(self, now: float):
        if self.runtime is None or not self.runtime.apps:
            return
        durations = self._m_durations
        for app in self.runtime.apps.values():
            if app.status.terminal:
                continue
            for record in list(app.inflight.values()):
                inst = record.instance
                if inst is None or inst.state.terminal or record.dispatched_at is None:
                    continue
                elapsed = now - record.dispatched_at
                completed = durations.labels(record.task)
                severity = straggler_severity(elapsed, completed, self.config)
                if severity is not None:
                    key = f"{app.id}.{record.task}[{record.rank}]"
                    yield (
                        "straggler",
                        key,
                        severity,
                        {
                            "app": app.id,
                            "task": record.task,
                            "rank": record.rank,
                            "host": record.host_name,
                            "elapsed": elapsed,
                            "median": completed.quantile(0.5),
                        },
                    )

    def _check_queue_saturation(self, store: "SeriesStore"):
        cfg = self.config
        if store is not self._depth_store:
            self._depth_store = store
            self._depth_series.clear()
        for host_name, _daemon in self._daemon_order:
            series = self._depth_series.get(host_name)
            if series is None:
                series = store.series("daemon_queue_depth", host_name)
                self._depth_series[host_name] = series
            # fast path: the latest sample is almost always below threshold
            latest = series.latest()
            if latest is None or latest < cfg.queue_depth_threshold:
                continue
            depths = series.tail(cfg.queue_depth_ticks)
            if len(depths) < cfg.queue_depth_ticks:
                continue
            if all(d >= cfg.queue_depth_threshold for d in depths):
                severity = (
                    CRITICAL
                    if depths[-1] >= 2 * cfg.queue_depth_threshold
                    else WARNING
                )
                yield (
                    "queue_saturation",
                    host_name,
                    severity,
                    {"host": host_name, "depth": depths[-1]},
                )

    def _check_bid_starvation(self, now: float):
        cfg = self.config
        for host_name, daemon in self._daemon_order:
            if not daemon.pending_queue or not daemon.is_coordinator:
                continue
            for item in daemon.pending_queue.items():
                waited = now - item.enqueued_at
                if waited > cfg.starvation_wait:
                    yield (
                        "bid_starvation",
                        item.request.req_id,
                        WARNING,
                        {
                            "req_id": item.request.req_id,
                            "app": item.request.app,
                            "leader": host_name,
                            "waited": waited,
                            "attempts": item.attempts,
                        },
                    )

    def _check_alloc_errors(self, store: "SeriesStore"):
        cfg = self.config
        series = store.series("sched_alloc_errors_total", "")
        delta = series.delta(cfg.alloc_error_window)
        if delta >= cfg.alloc_error_threshold:
            yield (
                "alloc_errors",
                "cluster",
                CRITICAL,
                {"errors_in_window": delta, "window_ticks": cfg.alloc_error_window},
            )

    def _check_hosts_down(self):
        for host_name, daemon in self._daemon_order:
            host = getattr(daemon, "host", None)
            if host is not None and not host.up:
                yield ("host_down", host_name, CRITICAL, {"host": host_name})

    def _check_stranded(self):
        if self.runtime is None:
            return
        for app in self.runtime.apps.values():
            if app.status.terminal:
                continue
            # FAILED state on a live app means a failure handler (failover)
            # absorbed the crash and re-dispatch is pending; the app indexes
            # those records so this is O(stranded), not O(records)
            for record in list(app.failed.values()):
                yield (
                    "stranded",
                    f"{app.id}.{record.task}[{record.rank}]",
                    WARNING,
                    {
                        "app": app.id,
                        "task": record.task,
                        "rank": record.rank,
                        "host": record.host_name,
                    },
                )
