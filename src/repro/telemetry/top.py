"""Rendering for ``repro top`` — a terminal view of live telemetry.

Pure string building over the registry, series store, and watchdog; the
CLI decides when to redraw. Kept free of simulator imports so it can also
render archived snapshots.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.metrics.report import format_table
from repro.telemetry.registry import Histogram

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.registry import MetricsRegistry
    from repro.telemetry.series import SeriesStore
    from repro.telemetry.watchdog import HealthWatchdog

#: counters shown in the one-line totals strip, in display order
_TOTAL_COUNTERS = (
    ("dispatches", "runtime_dispatches_total"),
    ("allocs", "sched_allocs_total"),
    ("alloc_errors", "sched_alloc_errors_total"),
    ("retries", "sched_retries_total"),
    ("migrations", "migrations_total"),
    ("chan msgs", "chan_messages_total"),
    ("faults", "faults_injected_total"),
    ("recoveries", "recovery_actions_total"),
)


def _family_total(registry: "MetricsRegistry", name: str) -> float:
    family = registry.get(name)
    if family is None:
        return 0.0
    return sum(child.value for _, child in family.samples())


def _gauge_value(registry: "MetricsRegistry", name: str, *labels: str) -> float:
    family = registry.get(name)
    if family is None:
        return 0.0
    return family.labels(*labels).value


def render_host_table(
    registry: "MetricsRegistry", store: "SeriesStore", spark_width: int = 12
) -> str:
    """Per-host gauges: load, queue depth, in-flight, load history."""
    hosts = sorted(
        set(store.keys_for("host_load")) | set(store.keys_for("host_inflight_instances"))
    )
    rows = []
    for host in hosts:
        rows.append(
            [
                host,
                f"{_gauge_value(registry, 'host_load', host):.2f}",
                int(_gauge_value(registry, "daemon_queue_depth", host)),
                int(_gauge_value(registry, "host_inflight_instances", host)),
                store.series("host_load", host).spark(spark_width),
            ]
        )
    return format_table(
        ["host", "load", "queue", "inflight", "load history"], rows, title="cluster"
    )


def render_task_quantiles(registry: "MetricsRegistry") -> str:
    """p50/p95/max of completed-instance durations per task."""
    family = registry.get("task_duration_seconds")
    rows = []
    if family is not None:
        for values, child in family.samples():
            if not isinstance(child, Histogram) or child.count == 0:
                continue
            rows.append(
                [
                    values[0] if values else "(all)",
                    child.count,
                    f"{child.quantile(0.5):.4f}",
                    f"{child.quantile(0.95):.4f}",
                    f"{child._max:.4f}",
                ]
            )
    if not rows:
        return ""
    return format_table(
        ["task", "done", "p50 (s)", "p95 (s)", "max (s)"],
        rows,
        title="task durations",
    )


def render_totals(registry: "MetricsRegistry") -> str:
    parts = [
        f"{label}={int(_family_total(registry, name))}"
        for label, name in _TOTAL_COUNTERS
    ]
    net = (
        f"net: {int(_gauge_value(registry, 'net_messages_sent'))} msgs / "
        f"{int(_gauge_value(registry, 'net_bytes_sent')):,} bytes"
    )
    return "totals: " + "  ".join(parts) + "\n" + net


def render_health(watchdog: "HealthWatchdog | None", limit: int = 8) -> str:
    if watchdog is None:
        return ""
    active = watchdog.active()
    if not active:
        return "health: ok"
    lines = ["health:"]
    for event in active[-limit:]:
        lines.append(
            f"  [{event.time:9.2f}s] {event.severity.upper():8s} "
            f"{event.rule} {event.key}"
        )
    if len(active) > limit:
        lines.append(f"  (+{len(active) - limit} more active)")
    return "\n".join(lines)


def render_top(
    registry: "MetricsRegistry",
    store: "SeriesStore",
    watchdog: "HealthWatchdog | None" = None,
    now: float = 0.0,
    title: str = "repro top",
) -> str:
    """One full frame."""
    running = int(_gauge_value(registry, "apps_running"))
    header = f"{title} — t={now:.2f}s  apps running: {running}"
    sections = [
        header,
        render_host_table(registry, store),
        render_task_quantiles(registry),
        render_totals(registry),
        render_health(watchdog),
    ]
    return "\n\n".join(s for s in sections if s)
