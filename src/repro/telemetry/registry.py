"""The online metrics registry.

Unlike :mod:`repro.metrics` (post-hoc re-derivation from the event log),
the registry holds *live* aggregates — counters, gauges, and histograms —
updated directly at the emission points in the scheduler daemon, runtime
manager, channels, vMPI interpreter, and migration engine. Nothing here
stores per-sample data: histograms use fixed exponential buckets plus an
optional P² streaming quantile sketch, so memory stays constant no matter
how long a run is.

Naming follows Prometheus conventions: ``snake_case`` with a ``_total``
suffix for counters and a unit suffix (``_seconds``, ``_bytes``) where one
applies. Labels are declared per family and instantiated per child::

    reg = MetricsRegistry()
    reg.counter("sched_requests_total", "bidding rounds led").inc()
    reg.gauge("host_load", "background+VCE load", labels=("host",)) \\
       .labels("ws0").set(0.4)
    reg.histogram("task_duration_seconds", "dispatch->exit").observe(1.2)
"""

from __future__ import annotations

import functools
import math
from typing import Any, Iterator

from repro.util.errors import ConfigurationError

# default exponential bucket ladder for duration histograms: 1 ms up to
# ~1.3e5 s with a 1.6 growth factor (relative quantile error <= 0.6)
DEFAULT_START = 1e-3
DEFAULT_FACTOR = 1.6
DEFAULT_BUCKETS = 40


@functools.lru_cache(maxsize=64)
def exponential_bounds(
    start: float = DEFAULT_START,
    factor: float = DEFAULT_FACTOR,
    count: int = DEFAULT_BUCKETS,
) -> tuple[float, ...]:
    """Upper bounds ``start * factor**i`` for ``i in [0, count)``; the
    implicit final bucket is ``+Inf``. Bounds are rounded to 9 significant
    digits so exported ``le=`` labels stay readable. Cached — emission
    points may ask for the same ladder on every observation."""
    if start <= 0 or factor <= 1.0 or count < 1:
        raise ConfigurationError(
            f"bad bucket ladder: start={start} factor={factor} count={count}"
        )
    return tuple(float(f"{start * factor**i:.9g}") for i in range(count))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(f"counters only go up (inc {amount})")
        self.value += amount


class Gauge:
    """A value that can go up and down (load, queue depth, in-flight)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-exponential-bucket histogram with streaming quantiles.

    ``bucket_counts[i]`` counts observations ``<= bounds[i]`` (non-
    cumulative per bucket); observations beyond the last bound land in the
    overflow bucket. :meth:`quantile` interpolates inside the selected
    bucket, so its relative error is bounded by ``factor - 1`` for values
    past the first bucket — adequate for dashboards and watchdog rules
    without storing samples.
    """

    __slots__ = ("bounds", "bucket_counts", "overflow", "count", "sum", "_min", "_max")
    kind = "histogram"

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        self.bucket_counts = [0] * len(bounds)
        self.overflow = 0
        self.count = 0
        self.sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        bounds = self.bounds
        if value > bounds[-1]:
            self.overflow += 1
            return
        # binary search for the first bound >= value
        lo, hi = 0, len(bounds) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if bounds[mid] >= value:
                hi = mid
            else:
                lo = mid + 1
        self.bucket_counts[lo] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (0 <= q <= 1) by linear interpolation
        inside the holding bucket; exact observed min/max clamp the ends."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0.0
        for i, n in enumerate(self.bucket_counts):
            if n == 0:
                continue
            if seen + n >= rank:
                upper = self.bounds[i]
                lower = self.bounds[i - 1] if i > 0 else 0.0
                frac = (rank - seen) / n
                est = lower + frac * (upper - lower)
                return min(max(est, self._min), self._max)
            seen += n
        return self._max  # rank falls in the overflow bucket

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(le, cumulative_count)`` pairs, ending with ``(inf, count)`` —
        the Prometheus exposition shape."""
        out = []
        acc = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            acc += n
            out.append((bound, acc))
        out.append((math.inf, acc + self.overflow))
        return out


class QuantileSketch:
    """P² (Jain & Chlamtac 1985) streaming estimator of one quantile.

    Maintains five markers — no sample storage — and converges to the true
    quantile as observations accumulate. Used where a single accurate
    percentile matters more than a full distribution (e.g. the watchdog's
    straggler baseline).
    """

    __slots__ = ("q", "count", "_heights", "_positions", "_desired", "_increments")
    kind = "sketch"

    def __init__(self, q: float = 0.5) -> None:
        if not 0.0 < q < 1.0:
            raise ConfigurationError(f"sketch quantile must be in (0, 1), got {q}")
        self.q = q
        self.count = 0
        self._heights: list[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def observe(self, value: float) -> None:
        self.count += 1
        if len(self._heights) < 5:
            self._heights.append(value)
            self._heights.sort()
            return
        h, pos = self._heights, self._positions
        if value < h[0]:
            h[0] = value
            k = 0
        elif value >= h[4]:
            h[4] = value
            k = 3
        else:
            k = next(i for i in range(4) if h[i] <= value < h[i + 1])
        for i in range(k + 1, 5):
            pos[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # adjust the three middle markers toward their desired positions
        for i in range(1, 4):
            d = self._desired[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1.0) or (
                d <= -1.0 and pos[i - 1] - pos[i] < -1.0
            ):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:  # parabolic would cross a neighbour: fall back to linear
                    j = i + int(step)
                    h[i] = h[i] + step * (h[j] - h[i]) / (pos[j] - pos[i])
                pos[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, pos = self._heights, self._positions
        return h[i] + step / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + step) * (h[i + 1] - h[i]) / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - step) * (h[i] - h[i - 1]) / (pos[i] - pos[i - 1])
        )

    @property
    def value(self) -> float:
        """Current estimate (exact while fewer than five observations)."""
        if not self._heights:
            return 0.0
        if self.count < 5:
            rank = max(0, min(len(self._heights) - 1, round(self.q * (len(self._heights) - 1))))
            return sorted(self._heights)[rank]
        return self._heights[2]


class MetricFamily:
    """One named metric with fixed label names and per-label-value children."""

    __slots__ = ("name", "help", "label_names", "kind", "_children", "_make")

    def __init__(self, name: str, help_text: str, label_names: tuple[str, ...], make) -> None:
        self.name = name
        self.help = help_text
        self.label_names = label_names
        self._make = make
        self._children: dict[tuple[str, ...], Any] = {}
        self.kind: str | None = None  # fixed by the registry at creation

    def labels(self, *values: Any) -> Any:
        """Get-or-create the child for one label-value combination."""
        key = tuple(str(v) for v in values)
        if len(key) != len(self.label_names):
            raise ConfigurationError(
                f"metric {self.name!r} takes labels {self.label_names}, got {values!r}"
            )
        child = self._children.get(key)
        if child is None:
            child = self._make()
            self._children[key] = child
            if self.kind is None:
                self.kind = child.kind
        return child

    def samples(self) -> Iterator[tuple[tuple[str, ...], Any]]:
        return iter(sorted(self._children.items()))

    # unlabeled families delegate to the single () child ------------------

    def _solo(self) -> Any:
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    @property
    def value(self) -> float:
        return self._solo().value

    def quantile(self, q: float) -> float:
        return self._solo().quantile(q)


class MetricsRegistry:
    """All live metrics of one VCE, keyed by name.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    fixes the help text, label names, and (for histograms) bucket ladder;
    later calls with the same name return the same family, so emission
    points need no shared setup.
    """

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    def _family(self, name: str, help_text: str, labels, make, kind: str) -> MetricFamily:
        family = self._families.get(name)
        if family is not None:
            if family.kind is not None and family.kind != kind:
                raise ConfigurationError(
                    f"metric {name!r} is a {family.kind}, not a {kind}"
                )
            return family
        family = MetricFamily(name, help_text, tuple(labels), make)
        family.kind = kind
        self._families[name] = family
        return family

    def counter(self, name: str, help_text: str = "", labels=()) -> MetricFamily:
        return self._family(name, help_text, labels, Counter, "counter")

    def gauge(self, name: str, help_text: str = "", labels=()) -> MetricFamily:
        return self._family(name, help_text, labels, Gauge, "gauge")

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels=(),
        start: float = DEFAULT_START,
        factor: float = DEFAULT_FACTOR,
        count: int = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        bounds = exponential_bounds(start, factor, count)
        return self._family(name, help_text, labels, lambda: Histogram(bounds), "histogram")

    def sketch(self, name: str, q: float, help_text: str = "", labels=()) -> MetricFamily:
        return self._family(name, help_text, labels, lambda: QuantileSketch(q), "sketch")

    def get(self, name: str) -> MetricFamily | None:
        return self._families.get(name)

    def families(self) -> Iterator[MetricFamily]:
        return iter(sorted(self._families.values(), key=lambda f: f.name))

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __len__(self) -> int:
        return len(self._families)
