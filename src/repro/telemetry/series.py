"""Bounded ring-buffer time series for sampled telemetry.

The :class:`ClusterSampler` appends one point per metric per tick; a
:class:`RingSeries` keeps the last *capacity* of them so `repro top` can
draw short load histories and the watchdog can evaluate windowed rules,
while memory stays constant over arbitrarily long runs.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

SPARK_CHARS = "▁▂▃▄▅▆▇█"


class RingSeries:
    """The last *capacity* ``(time, value)`` points of one series."""

    __slots__ = ("_points",)

    def __init__(self, capacity: int = 600) -> None:
        if capacity < 1:
            raise ValueError(f"series capacity must be >= 1, got {capacity}")
        self._points: deque[tuple[float, float]] = deque(maxlen=capacity)

    def append(self, time: float, value: float) -> None:
        self._points.append((time, value))

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(self._points)

    @property
    def capacity(self) -> int:
        return self._points.maxlen or 0

    def latest(self) -> float | None:
        return self._points[-1][1] if self._points else None

    def values(self) -> list[float]:
        return [v for _, v in self._points]

    def window(self, since: float) -> list[tuple[float, float]]:
        """Points with ``time >= since`` (newest-biased scan)."""
        out = []
        for t, v in reversed(self._points):
            if t < since:
                break
            out.append((t, v))
        out.reverse()
        return out

    def tail(self, n: int) -> list[float]:
        """The last *n* values (fewer if the series is shorter)."""
        if n <= 0:
            return []
        points = self._points
        return [points[i][1] for i in range(max(0, len(points) - n), len(points))]

    def delta(self, n: int) -> float:
        """value[-1] - value[-1-n] — the increase over the last *n* steps
        (for counters sampled as totals). 0.0 when not enough points."""
        points = self._points
        if n <= 0 or len(points) <= n:
            return 0.0
        return points[-1][1] - points[-1 - n][1]

    def spark(self, width: int = 16) -> str:
        """Unicode sparkline of the last *width* values."""
        values = self.tail(width)
        if not values:
            return ""
        lo, hi = min(values), max(values)
        span = hi - lo
        if span <= 0:
            return SPARK_CHARS[0] * len(values)
        top = len(SPARK_CHARS) - 1
        return "".join(
            SPARK_CHARS[min(top, int((v - lo) / span * top + 0.5))] for v in values
        )


class SeriesStore:
    """Named ring series, created on first append.

    Keys are ``(metric, key)`` pairs — e.g. ``("host_load", "ws0")`` — so
    per-host and cluster-wide series coexist without name mangling.
    """

    def __init__(self, capacity: int = 600) -> None:
        self.capacity = capacity
        self._series: dict[tuple[str, str], RingSeries] = {}

    def series(self, metric: str, key: str = "") -> RingSeries:
        handle = self._series.get((metric, key))
        if handle is None:
            handle = RingSeries(self.capacity)
            self._series[(metric, key)] = handle
        return handle

    def append(self, metric: str, key: str, time: float, value: float) -> None:
        self.series(metric, key).append(time, value)

    def keys_for(self, metric: str) -> list[str]:
        return sorted(k for m, k in self._series if m == metric)

    def items(self) -> Iterator[tuple[tuple[str, str], RingSeries]]:
        return iter(sorted(self._series.items()))

    def __len__(self) -> int:
        return len(self._series)

    def __contains__(self, key: tuple[str, str]) -> bool:
        return key in self._series
