"""VCE wiring: one object bundling the live-telemetry parts.

The :class:`VirtualComputingEnvironment` creates a :class:`Telemetry` when
``VCEConfig.telemetry`` is on: the registry is published on the simulator
(``sim.telemetry``) for the instrumented components, and the sampler +
watchdog pair is spawned on the user's workstation at boot.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.telemetry.export import snapshot, to_prometheus
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.sampler import ClusterSampler
from repro.telemetry.series import SeriesStore
from repro.telemetry.top import render_top
from repro.telemetry.watchdog import HealthWatchdog, WatchdogConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.host import Host
    from repro.netsim.kernel import Simulator
    from repro.runtime.manager import RuntimeManager
    from repro.scheduler.daemon import SchedulerDaemon


class Telemetry:
    """Registry + sampler + watchdog for one VCE."""

    def __init__(
        self,
        sim: "Simulator",
        runtime: "RuntimeManager",
        daemons: dict[str, "SchedulerDaemon"],
        interval: float = 4.0,
        series_capacity: int = 600,
        watchdog_config: WatchdogConfig | None = None,
    ) -> None:
        self.sim = sim
        # reuse a registry already published on the simulator (the VCE
        # installs one before building components so they can cache handles)
        self.registry = sim.telemetry if sim.telemetry is not None else MetricsRegistry()
        sim.telemetry = self.registry
        self.store = SeriesStore(series_capacity)
        self.watchdog = HealthWatchdog(
            self.registry,
            runtime,
            daemons,
            emit=lambda category, **data: sim.emit(category, "watchdog", **data),
            config=watchdog_config,
        )
        self.sampler = ClusterSampler(
            "telemetry",
            self.registry,
            runtime,
            daemons,
            interval=interval,
            store=self.store,
            watchdog=self.watchdog,
        )

    def install(self, host: "Host") -> None:
        """Spawn the sampler process on *host* (idempotent)."""
        if self.sampler.host is None:
            host.spawn(self.sampler)

    # ------------------------------------------------------------ convenience

    def refresh(self) -> None:
        """Take one sample right now (gauges are otherwise one tick stale
        after ``run_to_completion`` stops the simulation mid-interval)."""
        if self.sampler.host is not None:
            self.sampler.sample()

    def render(self, title: str = "repro top", refresh: bool = True) -> str:
        if refresh:
            self.refresh()
        return render_top(
            self.registry, self.store, self.watchdog, now=self.sim.now, title=title
        )

    def snapshot(self, refresh: bool = True, include_health: bool = True) -> dict:
        """Metric snapshot plus (by default) the watchdog's rule states —
        the one schema ``repro top --json`` and the control-plane dashboard
        share (see :meth:`HealthWatchdog.snapshot`)."""
        if refresh:
            self.refresh()
        out = snapshot(self.registry, time=self.sim.now)
        if include_health:
            out["health"] = self.watchdog.snapshot()
        return out

    def prometheus(self) -> str:
        return to_prometheus(self.registry)
