"""The cluster sampler: periodic snapshots of live cluster state.

A :class:`ClusterSampler` is a netsim process (conventionally spawned on
the user's workstation) whose daemon timer fires every ``interval``
simulated seconds. Each tick it reads — never re-scans the event log —

- per-host background load (through each scheduler daemon's
  ``current_load``, the same number bids carry),
- per-daemon pending-queue depth,
- in-flight VCE instances per host,
- the network's cumulative message/byte counters,

publishes them as gauges in the registry, appends them to bounded
ring-buffer time series, and then lets the health watchdog evaluate its
rules over the fresh sample. Daemon timers never keep the simulation
alive, so an idle VCE still terminates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.netsim.process import SimProcess
from repro.telemetry.series import SeriesStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.manager import RuntimeManager
    from repro.scheduler.daemon import SchedulerDaemon
    from repro.telemetry.registry import MetricsRegistry
    from repro.telemetry.watchdog import HealthWatchdog


class ClusterSampler(SimProcess):
    """See module docstring.

    Args:
        name: process name (conventionally ``"telemetry"``).
        registry: the live metrics registry to publish gauges into.
        runtime: the runtime manager (in-flight instances, running apps).
        daemons: host name -> scheduler daemon (load and queue depth).
        interval: simulated seconds between samples.
        store: ring-buffer series store (one is created if not given).
        watchdog: optional health watchdog evaluated after every sample.
    """

    def __init__(
        self,
        name: str,
        registry: "MetricsRegistry",
        runtime: "RuntimeManager",
        daemons: dict[str, "SchedulerDaemon"],
        interval: float = 4.0,
        store: SeriesStore | None = None,
        watchdog: "HealthWatchdog | None" = None,
    ) -> None:
        super().__init__(name)
        self.registry = registry
        self.runtime = runtime
        self.daemons = daemons
        self.interval = interval
        self.store = store if store is not None else SeriesStore()
        self.watchdog = watchdog
        self.ticks = 0
        #: callbacks invoked with the sample time after each tick — the
        #: control plane's metric-stream hook.  Listeners run inside the
        #: simulation's deterministic event order and must only read.
        self.listeners: list = []
        self._g_load = registry.gauge(
            "host_load", "background + VCE-hosted load fraction", labels=("host",)
        )
        self._g_queue = registry.gauge(
            "daemon_queue_depth", "pending requests in the leader queue", labels=("host",)
        )
        self._g_inflight = registry.gauge(
            "host_inflight_instances", "live VCE task instances", labels=("host",)
        )
        self._g_running = registry.gauge("apps_running", "applications in flight")
        self._g_sent = registry.gauge("net_messages_sent", "cumulative network sends")
        self._g_delivered = registry.gauge(
            "net_messages_delivered", "cumulative network deliveries"
        )
        self._g_bytes = registry.gauge("net_bytes_sent", "cumulative network bytes")
        self._c_alloc_errors = registry.counter(
            "sched_alloc_errors_total", "bidding rounds with too few bids"
        )
        self._g_sched_share = registry.gauge(
            "sched_event_share",
            "fraction of all log records from scheduling (sched.* + isis.*)",
        )
        # per-tick handles (gauge children + ring series), resolved once on
        # the first sample — the sampler runs inside the hot loop, so the
        # steady-state tick does no dict/label lookups at all
        self._rows: list = []
        self._inflight_rows: dict = {}
        self._solo = None

    # ---------------------------------------------------------------- ticking

    def on_start(self) -> None:
        self.set_timer(self.interval, "sample", daemon=True)

    def on_timer(self, key: str) -> None:
        if key == "sample":
            self.sample()
            self.set_timer(self.interval, "sample", daemon=True)

    # --------------------------------------------------------------- sampling

    def _inflight_by_host(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for app in self.runtime.apps.values():
            # the app maintains its in-flight record index exactly, so this
            # scan costs O(live instances), not O(application size)
            for record in app.inflight.values():
                for inst in (record.instance, *record.redundant_copies):
                    if inst is not None and not inst.state.terminal and inst.host is not None:
                        out[inst.host.name] = out.get(inst.host.name, 0) + 1
        return out

    def _build_handles(self) -> None:
        """Resolve gauge children and ring series once; the daemon set and
        the sampler's own host are fixed for the life of the process."""
        store = self.store
        for host_name, daemon in sorted(self.daemons.items()):
            self._rows.append(
                (
                    daemon,
                    self._g_load.labels(host_name),
                    self._g_queue.labels(host_name),
                    store.series("host_load", host_name),
                    store.series("daemon_queue_depth", host_name),
                )
            )
        for host_name in sorted(
            set(self.daemons) | ({self.host.name} if self.host is not None else set())
        ):
            self._inflight_rows[host_name] = (
                self._g_inflight.labels(host_name),
                store.series("host_inflight_instances", host_name),
            )
        self._solo = (
            self._g_running.labels(),
            store.series("apps_running", ""),
            self._g_sent.labels(),
            self._g_delivered.labels(),
            self._g_bytes.labels(),
            store.series("net_messages_sent", ""),
            store.series("net_bytes_sent", ""),
            self._c_alloc_errors.labels(),
            store.series("sched_alloc_errors_total", ""),
            self._g_sched_share.labels(),
            store.series("sched_event_share", ""),
        )

    def _inflight_row(self, host_name: str):
        """Get-or-create the handle pair for a host outside the daemon set
        (e.g. an instance migrated to a host with no scheduler daemon)."""
        row = self._inflight_rows.get(host_name)
        if row is None:
            row = (
                self._g_inflight.labels(host_name),
                self.store.series("host_inflight_instances", host_name),
            )
            self._inflight_rows[host_name] = row
        return row

    def sample(self) -> None:
        """Take one snapshot now (also callable directly from tests)."""
        if self._solo is None:
            self._build_handles()
        now = self.now
        self.ticks += 1
        inflight = self._inflight_by_host()

        for daemon, g_load, g_queue, s_load, s_queue in self._rows:
            load = daemon.current_load() if daemon.alive else 0.0
            depth = len(daemon.pending_queue)
            g_load.value = load
            g_queue.value = depth
            s_load.append(now, load)
            s_queue.append(now, depth)

        for host_name in inflight.keys() - self._inflight_rows.keys():
            self._inflight_row(host_name)
        for host_name, (g_inflight, s_inflight) in self._inflight_rows.items():
            n = inflight.get(host_name, 0)
            g_inflight.value = n
            s_inflight.append(now, n)

        running = sum(
            1 for app in self.runtime.apps.values() if not app.status.terminal
        )
        (
            g_running,
            s_running,
            g_sent,
            g_delivered,
            g_bytes,
            s_sent,
            s_bytes,
            c_alloc,
            s_alloc,
            g_share,
            s_share,
        ) = self._solo
        g_running.value = running
        s_running.append(now, running)

        network = self.runtime.network
        g_sent.value = network.messages_sent
        g_delivered.value = network.messages_delivered
        g_bytes.value = network.bytes_sent
        s_sent.append(now, network.messages_sent)
        s_bytes.append(now, network.bytes_sent)
        s_alloc.append(now, c_alloc.value)

        # scheduler event share: what fraction of everything the run logs
        # is scheduling machinery (the quantity hierarchical bidding keeps
        # sub-linear at scale; category_counts is maintained incrementally,
        # so this never re-scans the log)
        counts = self.sim.log.category_counts()
        total = sum(counts.values())
        sched = sum(
            v
            for k, v in counts.items()
            if k.startswith("sched.") or k.startswith("isis.")
        )
        share = sched / total if total else 0.0
        g_share.value = share
        s_share.append(now, share)

        if self.watchdog is not None:
            self.watchdog.evaluate(now, self.store)
        for listener in self.listeners:
            listener(now)
