"""Live telemetry: online metrics, cluster sampling, health watchdog.

Where :mod:`repro.metrics` answers questions *after* a run by re-scanning
the event log, this package maintains the answers *during* the run — the
sensor substrate the runtime manager's "pick the best machines from
current load" decisions (and every load-aware policy built on them) need:

- :class:`MetricsRegistry` — counters, gauges, exponential-bucket
  histograms, and P² quantile sketches, fed directly from emission points
  in the scheduler daemon, runtime manager, channels, vMPI interpreter,
  and migration engine. No per-sample storage.
- :class:`ClusterSampler` — a periodic netsim process snapshotting per-host
  load, queue depth, in-flight instances, and network counters into
  bounded ring-buffer time series.
- :class:`HealthWatchdog` — rules over those series (stragglers, queue
  saturation, bid starvation, repeated allocation errors) raising
  edge-triggered ``health.*`` events.
- Exporters — Prometheus text exposition and JSON snapshots — plus the
  ``repro top`` renderer.
"""

from repro.telemetry.export import (
    registry_from_snapshot,
    snapshot,
    to_prometheus,
    write_json,
    write_prometheus,
)
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QuantileSketch,
    exponential_bounds,
)
from repro.telemetry.sampler import ClusterSampler
from repro.telemetry.series import RingSeries, SeriesStore
from repro.telemetry.service import Telemetry
from repro.telemetry.top import render_top
from repro.telemetry.watchdog import (
    HealthEvent,
    HealthWatchdog,
    WatchdogConfig,
    straggler_severity,
)

__all__ = [
    "ClusterSampler",
    "Counter",
    "Gauge",
    "HealthEvent",
    "HealthWatchdog",
    "Histogram",
    "MetricsRegistry",
    "QuantileSketch",
    "RingSeries",
    "SeriesStore",
    "Telemetry",
    "WatchdogConfig",
    "exponential_bounds",
    "registry_from_snapshot",
    "render_top",
    "snapshot",
    "straggler_severity",
    "to_prometheus",
    "write_json",
    "write_prometheus",
]
