"""Exporters: Prometheus text exposition and JSON snapshots.

``to_prometheus`` renders the registry in the Prometheus text format
(version 0.0.4) so a scrape of a live run drops straight into an existing
monitoring stack; ``snapshot``/``registry_from_snapshot`` round-trip the
registry through plain JSON-able dicts for archival and the ``repro top
--json`` output.
"""

from __future__ import annotations

import json
import math
from typing import Any

from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QuantileSketch,
)
from repro.util.errors import ConfigurationError

PREFIX = "vce_"


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _labels_text(names: tuple[str, ...], values: tuple[str, ...], extra: str = "") -> str:
    parts = [f'{n}="{_escape(v)}"' for n, v in zip(names, values)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _num(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def to_prometheus(registry: MetricsRegistry, prefix: str = PREFIX) -> str:
    """The whole registry in Prometheus text exposition format."""
    lines: list[str] = []
    for family in registry.families():
        name = prefix + family.name
        kind = family.kind or "untyped"
        if kind == "sketch":
            kind = "gauge"  # sketches expose their current estimate
        if family.help:
            lines.append(f"# HELP {name} {_escape(family.help)}")
        lines.append(f"# TYPE {name} {kind}")
        for values, child in family.samples():
            labels = _labels_text(family.label_names, values)
            if isinstance(child, Histogram):
                for le, cumulative in child.cumulative_buckets():
                    bucket_labels = _labels_text(
                        family.label_names, values, f'le="{_num(le)}"'
                    )
                    lines.append(f"{name}_bucket{bucket_labels} {cumulative}")
                lines.append(f"{name}_sum{labels} {_num(child.sum)}")
                lines.append(f"{name}_count{labels} {child.count}")
            elif isinstance(child, (Counter, Gauge, QuantileSketch)):
                lines.append(f"{name}{labels} {_num(child.value)}")
    return "\n".join(lines) + "\n"


def snapshot(registry: MetricsRegistry, time: float | None = None) -> dict[str, Any]:
    """JSON-able dict of every metric's current state (lossless for
    counters/gauges/histograms; sketches export their five markers)."""
    metrics: dict[str, Any] = {}
    for family in registry.families():
        series = []
        for values, child in family.samples():
            entry: dict[str, Any] = {"labels": list(values)}
            if isinstance(child, Histogram):
                entry.update(
                    bounds=list(child.bounds),
                    counts=list(child.bucket_counts),
                    overflow=child.overflow,
                    sum=child.sum,
                    count=child.count,
                    min=None if child.count == 0 else child._min,
                    max=None if child.count == 0 else child._max,
                )
            elif isinstance(child, QuantileSketch):
                entry.update(q=child.q, count=child.count, value=child.value)
            else:
                entry["value"] = child.value
            series.append(entry)
        metrics[family.name] = {
            "kind": family.kind,
            "help": family.help,
            "label_names": list(family.label_names),
            "series": series,
        }
    out: dict[str, Any] = {"metrics": metrics}
    if time is not None:
        out["time"] = time
    return out


def registry_from_snapshot(data: dict[str, Any]) -> MetricsRegistry:
    """Rebuild a registry from :func:`snapshot` output. Counter, gauge, and
    histogram state round-trips exactly; sketches are restored as gauges
    holding their exported estimate (the markers are not re-importable)."""
    registry = MetricsRegistry()
    for name, meta in data.get("metrics", {}).items():
        kind = meta.get("kind")
        help_text = meta.get("help", "")
        labels = tuple(meta.get("label_names", ()))
        # create the family even when it has no samples yet, so declared-
        # but-never-observed metrics keep their HELP/TYPE exposition lines
        if kind == "counter":
            family = registry.counter(name, help_text, labels)
        elif kind in ("gauge", "sketch"):
            family = registry.gauge(name, help_text, labels)
        elif kind == "histogram":
            family = registry.histogram(name, help_text, labels)
        else:
            raise ConfigurationError(f"snapshot metric {name!r} has unknown kind {kind!r}")
        for entry in meta.get("series", []):
            child = family.labels(*tuple(entry.get("labels", ())))
            if kind == "histogram":
                child.bounds = tuple(entry["bounds"])
                child.bucket_counts = list(entry["counts"])
                child.overflow = int(entry.get("overflow", 0))
                child.sum = float(entry["sum"])
                child.count = int(entry["count"])
                child._min = entry["min"] if entry.get("min") is not None else math.inf
                child._max = entry["max"] if entry.get("max") is not None else -math.inf
            else:
                child.value = float(entry["value"])
    return registry


def write_json(registry: MetricsRegistry, path: str, time: float | None = None) -> None:
    with open(path, "w") as fh:
        json.dump(snapshot(registry, time), fh, indent=2, sort_keys=True)


def write_prometheus(registry: MetricsRegistry, path: str, prefix: str = PREFIX) -> None:
    with open(path, "w") as fh:
        fh.write(to_prometheus(registry, prefix))
