"""Process migration through redundant execution (§4.4, first scheme).

"Dispatch the same task on several idle machines. If one of those machines
gets busy with other work then kill the incarnation of the redundant task
on that machine. This achieves process migration with low overhead because
killing a task and using an already running redundant copy avoids the
communication overhead of moving a process and its state information over
the network."

Operation:

- :meth:`dispatch_redundant` launches extra copies of an instance on other
  hosts; the record's primary is whichever copy finishes first (the first
  DONE promotes itself, and every sibling copy is killed).
- :meth:`evict` removes the copy on a machine that became busy; if the
  evicted copy was the primary, a surviving copy is promoted and the
  instance's channel ports are redirected to it — the "migration" itself,
  with effectively zero transfer cost.

Limitation (inherent to the approach, and why the paper pairs it with
communication redirection): copies of a task that *receives* messages each
need the stream replayed; here only the primary's ports are bound, so the
scheme suits compute-dominated tasks — the very workloads (§4.4 cites
Monte Carlo simulations and batch jobs) redundant execution targets.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.migration.base import MigrationContext, MigrationScheme
from repro.runtime.instance import InstanceState, TaskInstance
from repro.util.errors import MigrationError
from repro.vmpi.communicator import TaskContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.app import Application, InstanceRecord


class RedundantExecutionManager(MigrationScheme):
    name = "redundant"

    def __init__(self, context: MigrationContext) -> None:
        super().__init__(context)
        self.copies_launched = 0
        self.copies_killed = 0
        self._installed = False

    def install(self) -> "RedundantExecutionManager":
        """Register as a runtime failure handler: when a primary instance
        fails (e.g. its host crashed), a live redundant copy is promoted and
        the application continues — the fault-tolerance side of the scheme.
        Returns self for chaining."""
        if not self._installed:
            self._installed = True
            self.context.runtime.add_failure_handler(self._on_primary_failure)
        return self

    def install_auto(self) -> "RedundantExecutionManager":
        """Additionally honour user hints: every task whose
        ``ExecutionHints.redundancy`` exceeds 1 automatically gets
        ``redundancy - 1`` copies on the least-loaded other machines at
        first dispatch ("if required or requested by the user", §3.1.2)."""
        self.install()
        self.context.runtime.dispatch_hooks.append(self._on_dispatch)
        return self

    def _on_dispatch(self, app, record) -> None:
        node = app.graph.task(record.task)
        wanted = node.hints.redundancy - 1
        if wanted <= 0 or len(record.placements) > 1 or record.redundant_copies:
            return  # only the first dispatch of an instance spawns copies
        now = self.context.sim.now
        candidates = sorted(
            (
                m
                for m in self._machine_names()
                if m != record.host_name and self._host_up(m)
            ),
            key=lambda m: self.context.machine_of(m).load_at(now),
        )
        hosts = candidates[:wanted]
        if hosts:
            self.dispatch_redundant(app, record, hosts)

    def _machine_names(self):
        return [
            name
            for name, host in self.context.network.hosts.items()
            if host.machine is not None
        ]

    def _host_up(self, name: str) -> bool:
        return self.context.network.hosts[name].up

    def _on_primary_failure(self, app, record, instance) -> bool:
        live = [
            c
            for c in record.redundant_copies
            if not c.state.terminal and c.host is not None and c.host.up
        ]
        if not live:
            return False
        self.context.sim.emit(
            "migration.redundant_failover",
            f"{record.task}[{record.rank}]",
            to=live[0].host.name,
        )
        self._promote(app, record, live[0], finished=False)
        # clear the FAILED mark; copy is live (through the app's choke point
        # so its done-count stays exact)
        app.commit_state(record, live[0].state)
        return True

    # ------------------------------------------------------------- dispatch

    def dispatch_redundant(
        self, app: "Application", record: "InstanceRecord", hosts: list[str]
    ) -> list[TaskInstance]:
        """Launch one extra copy on each named host."""
        runtime = self.context.runtime
        node = app.graph.task(record.task)
        copies = []
        for host_name in hosts:
            host = self.context.network.host(host_name)
            name = f"{app.id}.{record.task}.{record.rank}~copy{len(record.redundant_copies)}"
            ctx = TaskContext(
                app=app.id,
                task=record.task,
                rank=record.rank,
                size=node.instances,
                params=app.params,
            )
            copy = TaskInstance(
                name=name,
                ctx=ctx,
                node=node,
                channels={},
                mpi_channel=None,
                checkpoints=runtime.checkpoints,
                on_exit=lambda inst, state, outcome: self._copy_exited(
                    app, record, inst, state
                ),
            )
            host.spawn(copy)
            record.redundant_copies.append(copy)
            copies.append(copy)
            self.copies_launched += 1
            self.context.sim.emit(
                "migration.redundant_dispatch",
                f"{record.task}[{record.rank}]",
                host=host_name,
            )
        return copies

    # --------------------------------------------------------------- events

    def _copy_exited(
        self,
        app: "Application",
        record: "InstanceRecord",
        copy: TaskInstance,
        state: InstanceState,
    ) -> None:
        if state is not InstanceState.DONE:
            if copy in record.redundant_copies:
                record.redundant_copies.remove(copy)
            return
        if record.state.terminal:
            return
        # first finisher wins: promote this copy's result as the record's
        self._promote(app, record, copy, finished=True)

    def _promote(
        self,
        app: "Application",
        record: "InstanceRecord",
        copy: TaskInstance,
        finished: bool,
    ) -> None:
        runtime = self.context.runtime
        old_primary = record.instance
        if copy in record.redundant_copies:
            record.redundant_copies.remove(copy)
        if old_primary is not None and not old_primary.state.terminal:
            old_primary.kill("superseded-by-redundant-copy")
        old_address = old_primary.address if old_primary is not None else None
        record.instance = copy
        record.host_name = copy.host.name if copy.host else record.host_name
        record.placements.append(record.host_name or "?")
        copy.on_exit = lambda inst, state, outcome: runtime._instance_exited(
            app, record, inst, state, outcome
        )
        if old_address is not None and copy.host is not None:
            runtime.rebind_instance(old_address, copy.address)
        self.context.sim.emit(
            "migration.redundant_promote",
            f"{record.task}[{record.rank}]",
            host=record.host_name,
        )
        if finished:
            # the copy already completed: feed the completion through the
            # runtime's normal bookkeeping
            runtime._instance_exited(app, record, copy, InstanceState.DONE, copy.result)

    # ------------------------------------------------------------ migration

    def can_migrate(
        self, app: "Application", record: "InstanceRecord", dst_host: str
    ) -> tuple[bool, str]:
        live = [
            c
            for c in record.redundant_copies
            if not c.state.terminal and c.host is not None and c.host.up
        ]
        if not live:
            return False, "no live redundant copy to fall back on"
        return True, ""

    def migrate(
        self,
        app: "Application",
        record: "InstanceRecord",
        dst_host: str,
        on_done: Callable[[float], None] | None = None,
    ) -> None:
        """"Migrate" by killing the primary and promoting the copy running
        on *dst_host* (or the first live copy when dst_host is None-like)."""
        self._check(app, record, dst_host)
        started = self.context.sim.now
        src_host = record.host_name
        live = [
            c
            for c in record.redundant_copies
            if not c.state.terminal and c.host is not None and c.host.up
        ]
        chosen = next((c for c in live if c.host.name == dst_host), live[0])
        self.copies_killed += 1
        self._promote(app, record, chosen, finished=False)
        self._finish(record, chosen.host.name, started, on_done, src=src_host)

    def evict(self, app: "Application", record: "InstanceRecord", busy_host: str) -> None:
        """The busy-machine rule: kill whatever copy (or primary) runs on
        *busy_host*; promote a survivor if the primary was evicted."""
        for copy in list(record.redundant_copies):
            if copy.host is not None and copy.host.name == busy_host and not copy.state.terminal:
                copy.kill("host-busy")
                record.redundant_copies.remove(copy)
                self.copies_killed += 1
        primary = record.instance
        if (
            primary is not None
            and not primary.state.terminal
            and primary.host is not None
            and primary.host.name == busy_host
        ):
            ok, reason = self.can_migrate(app, record, busy_host)
            if not ok:
                raise MigrationError(
                    f"cannot evict primary of {record.task}[{record.rank}]: {reason}"
                )
            live = [
                c
                for c in record.redundant_copies
                if not c.state.terminal and c.host is not None and c.host.up
            ]
            primary.kill("host-busy")
            self.copies_killed += 1
            self._promote(app, record, live[0], finished=False)
