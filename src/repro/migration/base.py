"""Common migration machinery."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.util.errors import MigrationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.compilation.manager import CompilationManager
    from repro.machines.machine import Machine
    from repro.netsim.network import Network
    from repro.runtime.app import Application, InstanceRecord
    from repro.runtime.manager import RuntimeManager


@dataclass
class MigrationContext:
    """Shared services every scheme needs."""

    runtime: "RuntimeManager"
    network: "Network"
    compilation: "CompilationManager | None" = None

    @property
    def sim(self):
        return self.runtime.sim

    def machine_of(self, host_name: str) -> "Machine":
        machine = self.network.host(host_name).machine
        if machine is None:
            raise MigrationError(f"host {host_name!r} has no machine description")
        return machine


class MigrationScheme(abc.ABC):
    """One way of moving a running task instance to another machine.

    ``migrate`` is asynchronous: it starts the move and returns; *on_done*
    fires (with the migration latency) when the task is running at the
    destination. Schemes emit ``migration.*`` events for the metrics layer.
    """

    #: scheme name used in events and benchmark tables
    name: str = "abstract"

    def __init__(self, context: MigrationContext) -> None:
        self.context = context
        self.migrations = 0

    @abc.abstractmethod
    def can_migrate(
        self, app: "Application", record: "InstanceRecord", dst_host: str
    ) -> tuple[bool, str]:
        """(eligible, reason-if-not)."""

    @abc.abstractmethod
    def migrate(
        self,
        app: "Application",
        record: "InstanceRecord",
        dst_host: str,
        on_done: Callable[[float], None] | None = None,
    ) -> None:
        """Move ``record``'s instance to *dst_host*; raise
        :class:`MigrationError` if ineligible."""

    # ------------------------------------------------------------- helpers

    def _check(self, app: "Application", record: "InstanceRecord", dst_host: str) -> None:
        ok, reason = self.can_migrate(app, record, dst_host)
        if not ok:
            raise MigrationError(
                f"{self.name} cannot migrate {record.task}[{record.rank}] "
                f"to {dst_host}: {reason}"
            )

    def _emit(
        self,
        record: "InstanceRecord",
        dst_host: str,
        latency: float,
        src: str | None = None,
        **extra,
    ) -> None:
        # the migration is its own span [now - latency, now] in the app's
        # trace, parented beside the instance spans (under the app span)
        trace = {}
        instance = record.instance
        if instance is not None and instance.ctx.trace is not None:
            ctx = instance.ctx.trace
            trace = {
                "trace_id": ctx.trace_id,
                "span_id": self.context.sim.ids.next("span"),
                "parent_span_id": ctx.parent_span_id or ctx.span_id,
            }
        self.context.sim.emit(
            "migration.done",
            f"{record.task}[{record.rank}]",
            scheme=self.name,
            src=src if src is not None else record.host_name,
            dst=dst_host,
            latency=latency,
            task=record.task,
            rank=record.rank,
            **trace,
            **extra,
        )

    def _finish(
        self,
        record: "InstanceRecord",
        dst_host: str,
        started: float,
        on_done: Callable[[float], None] | None,
        src: str | None = None,
        **extra,
    ) -> None:
        self.migrations += 1
        latency = self.context.sim.now - started
        tel = self.context.sim.telemetry
        if tel is not None:
            tel.counter("migrations_total", "completed migrations", labels=("scheme",)) \
                .labels(self.name).inc()
            tel.histogram(
                "migration_latency_seconds", "suspend to running-at-destination",
                labels=("scheme",),
            ).labels(self.name).observe(latency)
        self._emit(record, dst_host, latency, src=src, **extra)
        if on_done is not None:
            on_done(latency)
