"""Process migration through checkpointing (§4.4, second scheme).

"Migratable jobs checkpoint regularly. To migrate a job kill it and start
it somewhere else by instantiating the new incarnation from the checkpoint
record. This is expensive and may require the cooperation of the task
involved."

Costs charged: checkpoint restore time (store read, proportional to state
size) plus the work done since the last checkpoint, which the new
incarnation re-executes (visible as a longer completion time rather than an
explicit delay — the program itself replays from the restored state).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.migration.base import MigrationScheme

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.app import Application, InstanceRecord


class CheckpointMigration(MigrationScheme):
    name = "checkpoint"

    def can_migrate(
        self, app: "Application", record: "InstanceRecord", dst_host: str
    ) -> tuple[bool, str]:
        node = app.graph.task(record.task)
        if not node.hints.checkpointable:
            return False, "task does not cooperate with checkpointing"
        if record.instance is None:
            return False, "instance was never dispatched"
        return True, ""

    def migrate(
        self,
        app: "Application",
        record: "InstanceRecord",
        dst_host: str,
        on_done: Callable[[float], None] | None = None,
    ) -> None:
        self._check(app, record, dst_host)
        runtime = self.context.runtime
        sim = self.context.sim
        started = sim.now
        src_host = record.host_name
        checkpoint = runtime.checkpoints.get(app.id, record.task, record.rank)
        instance = record.instance
        if instance is not None and not instance.state.terminal:
            instance.kill("checkpoint-migration")
        restore_delay = (
            runtime.checkpoints.restore_cost(checkpoint) if checkpoint is not None else 0.0
        )
        state = checkpoint.state if checkpoint is not None else None

        def restart() -> None:
            new_instance = runtime.dispatch_instance(app, record, dst_host, restored_state=state)
            if instance is not None:
                runtime.rebind_instance(instance.address, new_instance.address)
            self._finish(
                record,
                dst_host,
                started,
                on_done,
                src=src_host,
                had_checkpoint=checkpoint is not None,
            )

        sim.schedule(restore_delay, restart)
