"""Process migration the old-fashioned way (§4.4, third scheme).

"To migrate a job we dump the contents of the address space, copy it to a
new machine and restart it. This has many drawbacks, one being that it
requires homogeneity."

In the simulation the live process object *is* the address space, so the
move is exact — no work is lost — but it is only legal between machines
with identical object-code formats, and it freezes the task for the full
transfer time (address-space size over the wire).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.migration.base import MigrationScheme

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.app import Application, InstanceRecord


class DumpMigration(MigrationScheme):
    name = "dump"

    #: bytes of address space per declared MB of task memory
    BYTES_PER_MEMORY_MB = 1_000_000

    def can_migrate(
        self, app: "Application", record: "InstanceRecord", dst_host: str
    ) -> tuple[bool, str]:
        node = app.graph.task(record.task)
        if not node.hints.migratable:
            return False, "task is not migratable"
        instance = record.instance
        if instance is None or instance.state.terminal:
            return False, "no live instance"
        if record.host_name is None:
            return False, "instance has no recorded host"
        src = self.context.machine_of(record.host_name)
        dst = self.context.machine_of(dst_host)
        if not src.binary_compatible_with(dst):
            return False, (
                f"heterogeneous pair: {src.object_code_format} vs "
                f"{dst.object_code_format} (dump requires homogeneity)"
            )
        return True, ""

    def migrate(
        self,
        app: "Application",
        record: "InstanceRecord",
        dst_host: str,
        on_done: Callable[[float], None] | None = None,
    ) -> None:
        self._check(app, record, dst_host)
        sim = self.context.sim
        network = self.context.network
        started = sim.now
        src_host = record.host_name
        node = app.graph.task(record.task)
        instance = record.instance
        assert instance is not None
        image_bytes = node.memory_mb * self.BYTES_PER_MEMORY_MB
        transfer = image_bytes / network.latency.bandwidth + network.latency.base_latency
        old_address = instance.address
        instance.suspend()  # frozen while the image is on the wire
        sim.emit(
            "migration.dump_freeze",
            f"{record.task}[{record.rank}]",
            bytes=image_bytes,
            transfer=transfer,
        )

        def arrive() -> None:
            dst = network.host(dst_host)
            if not dst.up or instance.state.terminal:
                # destination died (or task ended) mid-transfer: thaw in place
                instance.resume()
                return
            dst.adopt(instance)
            self.context.runtime.rebind_instance(old_address, instance.address)
            record.host_name = dst_host
            record.placements.append(dst_host)
            instance.resume()
            self._finish(record, dst_host, started, on_done, src=src_host, bytes=image_bytes)

        sim.schedule(transfer, arrive)
