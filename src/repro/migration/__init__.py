"""Process migration (§4.4).

"To provide the most robust possible execution environment ... the
execution layer should implement a variety of process migration schemes."
The paper lists four; all are implemented here, with the cost/robustness
trade-offs it describes:

- :class:`RedundantExecutionManager` — "dispatch the same task on several
  idle machines. If one of those machines gets busy with other work then
  kill the incarnation of the redundant task on that machine. This achieves
  process migration with low overhead."
- :class:`CheckpointMigration` — "migratable jobs checkpoint regularly. To
  migrate a job kill it and start it somewhere else by instantiating the
  new incarnation from the checkpoint record. This is expensive and may
  require the cooperation of the task involved."
- :class:`DumpMigration` — "the old-fashioned way: dump the contents of
  the address space, copy it to a new machine and restart it. ... requires
  homogeneity."
- :class:`RecompileMigration` — "very expensive but may be very robust."

:class:`MigrationSelector` picks a scheme per migration "depend[ing] on the
state of the system and the characteristics of the task(s) involved".
"""

from repro.migration.base import MigrationContext, MigrationScheme
from repro.migration.redundant import RedundantExecutionManager
from repro.migration.checkpoint import CheckpointMigration
from repro.migration.dump import DumpMigration
from repro.migration.failover import FailoverConfig, FailoverManager
from repro.migration.recompile import RecompileMigration
from repro.migration.selector import MigrationSelector

__all__ = [
    "MigrationContext",
    "MigrationScheme",
    "RedundantExecutionManager",
    "CheckpointMigration",
    "DumpMigration",
    "FailoverConfig",
    "FailoverManager",
    "RecompileMigration",
    "MigrationSelector",
]
