"""Scheme selection.

"The execution layer should have several of these techniques in its
repertoire. Which of these will be used for any particular migration will
depend on the state of the system and the characteristics of the task(s)
involved." (§4.4)

Selection order (cheapest viable first):

1. redundant — a live copy already runs elsewhere: killing is free;
2. dump — exact, moderate cost, but only between homogeneous machines;
3. checkpoint — needs task cooperation; loses work since the last record;
4. recompile — works across any architecture pair, most expensive.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.migration.base import MigrationContext, MigrationScheme
from repro.migration.checkpoint import CheckpointMigration
from repro.migration.dump import DumpMigration
from repro.migration.recompile import RecompileMigration
from repro.migration.redundant import RedundantExecutionManager
from repro.util.errors import MigrationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.app import Application, InstanceRecord


class MigrationSelector:
    """Holds one instance of each scheme and routes each migration to the
    cheapest eligible one."""

    def __init__(self, context: MigrationContext) -> None:
        self.context = context
        self.redundant = RedundantExecutionManager(context)
        self.dump = DumpMigration(context)
        self.checkpoint = CheckpointMigration(context)
        self.recompile = RecompileMigration(context, use_checkpoint=True)
        #: cheapest-first repertoire
        self.repertoire: list[MigrationScheme] = [
            self.redundant,
            self.dump,
            self.checkpoint,
            self.recompile,
        ]

    def choose(
        self, app: "Application", record: "InstanceRecord", dst_host: str
    ) -> MigrationScheme:
        reasons = []
        for scheme in self.repertoire:
            ok, reason = scheme.can_migrate(app, record, dst_host)
            if ok:
                return scheme
            reasons.append(f"{scheme.name}: {reason}")
        raise MigrationError(
            f"no scheme can migrate {record.task}[{record.rank}] to {dst_host} — "
            + "; ".join(reasons)
        )

    def migrate(
        self,
        app: "Application",
        record: "InstanceRecord",
        dst_host: str,
        on_done: Callable[[float], None] | None = None,
    ) -> MigrationScheme:
        """Pick and run a scheme; returns the scheme used."""
        scheme = self.choose(app, record, dst_host)
        self.context.sim.emit(
            "migration.selected",
            f"{record.task}[{record.rank}]",
            scheme=scheme.name,
            dst=dst_host,
        )
        scheme.migrate(app, record, dst_host, on_done)
        return scheme
