"""Crash recovery: lease-based allocations and stranded-task re-dispatch.

The paper's EXM "migrates tasks when machines fail or are reclaimed"; the
:class:`FailoverManager` is the execution-layer half of that promise. It
installs itself as a runtime failure handler and dispatch hook:

- every dispatch takes a **lease**: a periodic check that the instance is
  still alive on a reachable host. A live instance renews; an expired
  lease (dead instance whose exit was never committed, or a host that
  silently vanished) strands the allocation and re-enters it into the
  dispatch pipeline.
- an instance crash (host loss) is offered to the failure handler, which
  **strands** the record instead of failing the application, then
  re-dispatches after a detection delay — or immediately when a scheduler
  daemon's failure detector reports the host lost (peer takeover via
  :meth:`host_lost`).
- re-dispatch bumps the record's **allocation epoch** (the runtime refuses
  exit commits from stale epochs — at-most-once completion), restores the
  latest checkpoint when one exists, and targets the least-loaded live
  host of a compatible machine class.

Every recovery action emits a ``recovery.*`` event and bumps the
``recovery_actions_total`` counter; strand-to-redispatch time lands in the
``recovery_latency_seconds`` histogram so chaos runs can report detection
and recovery latency next to the faults injected.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.migration.base import MigrationContext
from repro.runtime.app import Application, InstanceRecord
from repro.runtime.instance import InstanceState, TaskInstance


@dataclass
class FailoverConfig:
    """Knobs for crash recovery.

    Attributes:
        lease: simulated seconds between lease checks on a live instance.
        detection: delay between a strand and its re-dispatch when no
            daemon reports the loss earlier (models failure-detection
            latency of the crash-notification path).
        max_redispatches: per-(task, rank) re-dispatch budget; exhausting
            it lets the failure propagate (application fails).
        same_class_only: restrict re-dispatch targets to hosts whose
            machine class matches the original placement's class.
    """

    lease: float = 8.0
    detection: float = 2.0
    max_redispatches: int = 5
    same_class_only: bool = True


class FailoverManager:
    """Lease-based allocation recovery (see module docstring)."""

    name = "failover"

    def __init__(
        self, context: MigrationContext, config: FailoverConfig | None = None
    ) -> None:
        self.context = context
        self.config = config or FailoverConfig()
        self.redispatches = 0
        self.leases_expired = 0
        #: (app.id, task, rank) -> (app, record, epoch, stranded_at)
        self._stranded: dict[tuple[str, str, int], tuple] = {}
        self._attempts: dict[tuple[str, str, int], int] = {}
        self._installed = False

    # ----------------------------------------------------------------- wiring

    def install(self) -> "FailoverManager":
        """Register with the runtime manager (idempotent)."""
        if not self._installed:
            runtime = self.context.runtime
            runtime.add_failure_handler(self._on_failure)
            runtime.dispatch_hooks.append(self._on_dispatch)
            self._installed = True
        return self

    # ----------------------------------------------------------------- leases

    def _on_dispatch(self, app: Application, record: InstanceRecord) -> None:
        self._arm_lease(app, record, record.epoch)

    def _arm_lease(self, app: Application, record: InstanceRecord, epoch: int) -> None:
        self.context.sim.schedule(
            self.config.lease, lambda: self._check_lease(app, record, epoch)
        )

    def _check_lease(self, app: Application, record: InstanceRecord, epoch: int) -> None:
        hb = self.context.sim.hb
        if hb is not None:
            # a lease check racing a strand/redispatch is a no-op: the epoch
            # comparison below drops checks against superseded allocations
            hb.read(  # hbrace: ok(R004)
                f"lease:{app.id}:{record.task}:{record.rank}",
                "R004", "failover.check_lease",
            )
        if app.status.terminal or record.epoch != epoch:
            return  # app over, or this allocation was already superseded
        if record.state in (InstanceState.DONE, InstanceState.KILLED):
            return
        instance = record.instance
        host_up = (
            instance is not None
            and instance.host is not None
            and instance.host.up
        )
        if instance is not None and instance.alive and host_up:
            self._arm_lease(app, record, epoch)  # renewed
            return
        # lease expired: the allocation is dead but nothing committed its
        # exit — strand it and put the task back into the dispatch pipeline
        self.leases_expired += 1
        self._tel_count("lease_expired")
        self.context.sim.emit(
            "recovery.lease_expired", app.id,
            task=record.task, rank=record.rank, epoch=epoch,
            host=record.host_name,
        )
        self._strand(app, record, reason="lease-expired")

    # ---------------------------------------------------------------- failure

    def _on_failure(
        self, app: Application, record: InstanceRecord, instance: TaskInstance
    ) -> bool:
        """Runtime failure handler: absorb crashes by stranding the record."""
        key = (app.id, record.task, record.rank)
        if self._attempts.get(key, 0) >= self.config.max_redispatches:
            self._tel_count("gave_up")
            self.context.sim.emit(
                "recovery.gave_up", app.id,
                task=record.task, rank=record.rank,
                attempts=self._attempts[key],
            )
            return False
        self._strand(app, record, reason="instance-failed")
        return True

    def _strand(self, app: Application, record: InstanceRecord, reason: str) -> None:
        key = (app.id, record.task, record.rank)
        sim = self.context.sim
        hb = sim.hb
        if hb is not None:
            hb.write(f"lease:{':'.join(map(str, key))}", "R004", "failover.strand")
        if key in self._stranded:
            return
        self._stranded[key] = (app, record, record.epoch, sim.now)
        self._tel_count("strand")
        sim.emit(
            "recovery.strand", app.id,
            task=record.task, rank=record.rank, epoch=record.epoch,
            host=record.host_name, reason=reason,
        )
        # fallback path: re-dispatch after the detection delay unless a
        # daemon's failure detector gets there first via host_lost()
        sim.schedule(self.config.detection, lambda: self._redispatch(key, "timeout"))

    # ------------------------------------------------------------- redispatch

    def host_lost(self, host_name: str) -> None:
        """Peer-takeover entry point: a scheduler daemon detected *host_name*
        dead; immediately re-dispatch everything stranded there."""
        lost = [
            key
            for key, (_, record, _, _) in self._stranded.items()
            if record.host_name == host_name
        ]
        for key in lost:
            self._tel_count("takeover")
            self._redispatch(key, "daemon-takeover")

    def _redispatch(self, key: tuple[str, str, int], via: str) -> None:
        hb = self.context.sim.hb
        if hb is not None:
            hb.write(f"lease:{':'.join(map(str, key))}", "R004", "failover.redispatch")
        entry = self._stranded.pop(key, None)
        if entry is None:
            return  # already handled by the other path
        app, record, epoch, stranded_at = entry
        sim = self.context.sim
        if app.status.terminal or record.epoch != epoch:
            return
        target = self._pick_host(app, record)
        if target is None:
            # no live host right now — keep the allocation stranded and
            # retry after another detection period
            self._stranded[key] = entry
            sim.schedule(self.config.detection, lambda: self._redispatch(key, via))
            return
        self._attempts[key] = self._attempts.get(key, 0) + 1
        self.redispatches += 1
        checkpoint = self.context.runtime.checkpoints.get(
            app.id, record.task, record.rank
        )
        restored = checkpoint.state if checkpoint is not None else None
        latency = sim.now - stranded_at
        self._tel_count("redispatch")
        tel = sim.telemetry
        if tel is not None:
            tel.histogram(
                "recovery_latency_seconds", "strand to re-dispatch"
            ).observe(latency)
        sim.emit(
            "recovery.redispatch", app.id,
            task=record.task, rank=record.rank,
            src=record.host_name, dst=target, via=via,
            attempt=self._attempts[key], latency=latency,
            restored=checkpoint is not None,
        )
        self.context.runtime.dispatch_instance(app, record, target, restored_state=restored)

    def _pick_host(self, app: Application, record: InstanceRecord) -> str | None:
        """Least-loaded live host of a compatible class (deterministic)."""
        runtime = self.context.runtime
        network = self.context.network
        wanted_class = None
        if self.config.same_class_only and record.host_name is not None:
            try:
                wanted_class = self.context.machine_of(record.host_name).arch_class
            except Exception:
                wanted_class = None
        candidates: list[tuple[int, str]] = []
        for host in network.hosts.values():
            if not host.up or host.machine is None:
                continue
            if wanted_class is not None and host.machine.arch_class is not wanted_class:
                continue
            candidates.append((len(runtime.instances_on(host.name)), host.name))
        if not candidates:
            return None
        candidates.sort()
        return candidates[0][1]

    # -------------------------------------------------------------- telemetry

    def _tel_count(self, action: str) -> None:
        tel = self.context.sim.telemetry
        if tel is not None:
            tel.counter(
                "recovery_actions_total", "failover recovery actions",
                labels=("action",),
            ).labels(action).inc()

    # ---------------------------------------------------------------- queries

    def stranded(self) -> list[tuple[str, str, int]]:
        """Currently-stranded allocations (app, task, rank)."""
        return sorted(self._stranded)

    def report(self) -> dict[str, int]:
        return {
            "redispatches": self.redispatches,
            "leases_expired": self.leases_expired,
            "stranded": len(self._stranded),
        }
