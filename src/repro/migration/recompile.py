"""Process migration through recompilation (§4.4, fourth scheme).

"This is very expensive but may be very robust. It is only discussed in
one paper [Theimer & Hayes 1991] and may be difficult to implement."

The task is killed, its source is compiled for the destination's machine
class (unless a binary is already cached — anticipatory compilation makes
this scheme cheap!), and a new incarnation starts at the destination. By
default the incarnation restarts from the beginning; with
``use_checkpoint=True`` it restores the (architecture-independent)
checkpoint state, modelling the Theimer–Hayes state-translation idea.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.migration.base import MigrationContext, MigrationScheme

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.app import Application, InstanceRecord


class RecompileMigration(MigrationScheme):
    name = "recompile"

    def __init__(self, context: MigrationContext, use_checkpoint: bool = False) -> None:
        super().__init__(context)
        self.use_checkpoint = use_checkpoint

    def can_migrate(
        self, app: "Application", record: "InstanceRecord", dst_host: str
    ) -> tuple[bool, str]:
        node = app.graph.task(record.task)
        if node.language is None:
            return False, "task has no source language recorded"
        dst = self.context.machine_of(dst_host)
        compilation = self.context.compilation
        if compilation is None:
            return False, "no compilation manager available"
        if (
            not compilation.cache.has(node.name, dst.arch_class)
            and compilation.registry.lookup(node.language, dst.arch_class) is None
        ):
            return False, f"no compiler for {node.language!r} on {dst.arch_class}"
        return True, ""

    def migrate(
        self,
        app: "Application",
        record: "InstanceRecord",
        dst_host: str,
        on_done: Callable[[float], None] | None = None,
    ) -> None:
        self._check(app, record, dst_host)
        runtime = self.context.runtime
        compilation = self.context.compilation
        assert compilation is not None
        sim = self.context.sim
        started = sim.now
        src_host = record.host_name
        node = app.graph.task(record.task)
        dst = self.context.machine_of(dst_host)
        instance = record.instance
        if instance is not None and not instance.state.terminal:
            instance.kill("recompile-migration")
        # compile (or reuse an anticipatorily prepared binary)
        compile_delay = compilation.load_delay(node, dst, sim.now)
        state = None
        if self.use_checkpoint:
            checkpoint = runtime.checkpoints.get(app.id, record.task, record.rank)
            if checkpoint is not None:
                compile_delay += runtime.checkpoints.restore_cost(checkpoint)
                state = checkpoint.state

        def restart() -> None:
            new_instance = runtime.dispatch_instance(app, record, dst_host, restored_state=state)
            if instance is not None:
                runtime.rebind_instance(instance.address, new_instance.address)
            self._finish(record, dst_host, started, on_done, src=src_host, compile_delay=compile_delay)

        sim.schedule(compile_delay, restart)
