"""The problem specification layer: builds the initial task graph.

A fluent builder over :class:`~repro.taskgraph.TaskGraph`; the output of
this layer is a *structurally complete but unannotated* graph — functions,
inputs, outputs, and flow, with design/coding information still absent.
"""

from __future__ import annotations

from typing import Any

from repro.taskgraph import ArcKind, ExecutionHints, TaskGraph, TaskNode
from repro.util.errors import TaskGraphError


class ProblemSpecification:
    """Fluent builder for the initial task graph.

    >>> spec = ProblemSpecification("forecast")
    >>> _ = (spec.task("collect", "gather observations", work=30, instances=2)
    ...          .task("predict", "run the model", work=300)
    ...          .flow("collect", "predict", volume=10_000_000))
    >>> graph = spec.build()
    >>> sorted(t.name for t in graph)
    ['collect', 'predict']
    """

    def __init__(self, name: str) -> None:
        self.graph = TaskGraph(name)

    def task(
        self,
        name: str,
        function: str = "",
        *,
        work: float = 1.0,
        instances: int = 1,
        memory_mb: int = 1,
        inputs: list[str] | None = None,
        outputs: list[str] | None = None,
        requirements: dict[str, Any] | None = None,
        hints: ExecutionHints | None = None,
        local: bool = False,
    ) -> "ProblemSpecification":
        """Declare one task (chainable)."""
        self.graph.add_task(
            TaskNode(
                name=name,
                function=function,
                work=work,
                instances=instances,
                memory_mb=memory_mb,
                input_files=list(inputs or []),
                output_files=list(outputs or []),
                requirements=dict(requirements or {}),
                hints=hints or ExecutionHints(),
                local=local,
            )
        )
        return self

    def flow(self, src: str, dst: str, volume: int = 0) -> "ProblemSpecification":
        """Declare that *src*'s output feeds *dst* (a DATA precedence arc)."""
        self.graph.connect(src, dst, ArcKind.DATA, volume)
        return self

    def after(self, src: str, dst: str) -> "ProblemSpecification":
        """Declare pure precedence: *dst* starts after *src* completes."""
        self.graph.connect(src, dst, ArcKind.DEPENDENCY)
        return self

    def stream(
        self, src: str, dst: str, volume: int = 0, channel: str | None = None
    ) -> "ProblemSpecification":
        """Declare concurrent message exchange between two tasks."""
        self.graph.connect(src, dst, ArcKind.STREAM, volume, channel)
        return self

    def build(self) -> TaskGraph:
        """Validate and return the initial task graph."""
        if len(self.graph) == 0:
            raise TaskGraphError("problem specification declares no tasks")
        self.graph.validate()
        return self.graph
