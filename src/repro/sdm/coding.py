"""The coding level: attach implementations and hints.

"In this stage, the application is parallelized using architecture
independent languages ... The software tools and languages to code and
parallelize the application at this level will be based on emerging
standards (High Performance Fortran, High Performance C++, etc.)." (§3.1.1)

In this reproduction, an "architecture-independent source module" is a
Python generator factory: called with a task context, it yields runtime
syscalls (``Compute``, ``Send``, ``Recv`` ... — see ``repro.vmpi.api``).
The *language* tag still matters: the compilation manager only targets
machine classes for which a compiler for that language is registered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.taskgraph import ExecutionHints, TaskGraph
from repro.util.errors import TaskGraphError


@dataclass
class SourceModule:
    """One task's architecture-independent implementation.

    Attributes:
        language: language tag, e.g. ``"hpf"``, ``"hpc++"``, ``"c"``.
        program: generator factory ``(ctx) -> Iterator[syscall]``.
        source_size: abstract size of the source (drives compile time).
        metadata: free-form extras (entry point name, flags...).
    """

    language: str
    program: Callable[..., Any]
    source_size: int = 1000
    metadata: dict[str, Any] = field(default_factory=dict)


class CodingLevel:
    """Binds :class:`SourceModule` implementations and hints to tasks."""

    def __init__(self) -> None:
        self._sources: dict[str, SourceModule] = {}
        self._hints: dict[str, ExecutionHints] = {}

    def implement(self, task_name: str, module: SourceModule) -> "CodingLevel":
        """Provide the implementation for *task_name* (chainable)."""
        self._sources[task_name] = module
        return self

    def hint(self, task_name: str, hints: ExecutionHints) -> "CodingLevel":
        """Override the user hints recorded on *task_name* (chainable)."""
        self._hints[task_name] = hints
        return self

    def source_for(self, task_name: str) -> SourceModule | None:
        return self._sources.get(task_name)

    def run(self, graph: TaskGraph) -> TaskGraph:
        """Attach implementations to the graph in place."""
        unknown = set(self._sources) - {t.name for t in graph}
        if unknown:
            raise TaskGraphError(f"implementations for unknown tasks: {sorted(unknown)}")
        for node in graph:
            module = self._sources.get(node.name)
            if module is not None:
                node.language = module.language
                node.program = module.program
            if node.name in self._hints:
                node.hints = self._hints[node.name]
        return graph

    @staticmethod
    def check_complete(graph: TaskGraph) -> None:
        """Raise unless every task is implemented."""
        missing = [t.name for t in graph if not t.coded]
        if missing:
            raise TaskGraphError(f"coding level incomplete; unimplemented tasks: {missing}")
