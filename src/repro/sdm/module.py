"""The SDM facade: run all three layers and certify the task graph.

"The primary purpose of this module is to develop, test and evaluate the
performance of the application. ... The information contained in the
completed task graph will include: Implementation language, Input
requirements, Hardware requirements, User supplied information, and
Outputs." (§3.1.1)
"""

from __future__ import annotations

from repro.sdm.coding import CodingLevel
from repro.sdm.design import DesignStage
from repro.sdm.problemspec import ProblemSpecification
from repro.taskgraph import TaskGraph


class SoftwareDevelopmentModule:
    """Pipelines problem specification → design stage → coding level.

    Usage:

    >>> sdm = SoftwareDevelopmentModule()
    >>> spec = sdm.specification("app")          # layer 1
    >>> _ = spec.task("t", work=5)
    >>> from repro.sdm import SourceModule
    >>> _ = sdm.coding.implement("t", SourceModule("hpf", lambda ctx: iter(())))
    >>> graph = sdm.develop(spec)                # layers 2 + 3 + checks
    >>> graph.task("t").designed and graph.task("t").coded
    True
    """

    def __init__(self, design: DesignStage | None = None, coding: CodingLevel | None = None):
        self.design = design or DesignStage()
        self.coding = coding or CodingLevel()

    def specification(self, name: str) -> ProblemSpecification:
        """Open layer 1 for a new application."""
        return ProblemSpecification(name)

    def develop(self, spec: ProblemSpecification) -> TaskGraph:
        """Run the remaining layers over a specification and return the
        completed (fully annotated) task graph."""
        graph = spec.build()
        self.design.run(graph)
        DesignStage.check_complete(graph)
        self.coding.run(graph)
        CodingLevel.check_complete(graph)
        return graph
