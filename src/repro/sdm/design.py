"""The design stage: problem-architecture classification.

"The design stage is responsible for analyzing the computational needs and
the existing dependencies for each task in the task graph. The analysis ...
is based on Fox's work on the architecture of problems ... The parallel
software design methodology used in the design stage concentrates on the
architecture of the problem and not the machine." (§3.1.1)

Users may pre-annotate tasks; for the rest, the stage infers a
:class:`~repro.taskgraph.ProblemClass` from graph structure:

- a task with many instances and STREAM arcs among sibling instances — or an
  explicitly "lockstep" task — is *synchronous* (uniform data-parallel
  structure, the SIMD-shaped problems);
- a multi-instance task that exchanges data at phase boundaries (DATA arcs
  in and out, several instances) is *loosely synchronous*;
- independent or irregular tasks (single instance, or multi-instance with no
  coupling) are *asynchronous*.

The heuristic is intentionally simple — the paper leaves the analysis
abstract — but it is deterministic, overridable per task, and sufficient to
drive realistic class-to-machine mapping downstream.
"""

from __future__ import annotations

from repro.taskgraph import ArcKind, ProblemClass, TaskGraph, TaskNature
from repro.util.errors import TaskGraphError


class DesignStage:
    """Annotates every task with a problem class and nature flags."""

    def __init__(self, default_class: ProblemClass | None = None) -> None:
        #: Used when inference has no signal; None means "infer ASYNC".
        self.default_class = default_class

    def run(self, graph: TaskGraph) -> TaskGraph:
        """Classify all unclassified tasks in place; returns the graph."""
        graph.validate()
        for node in graph:
            if node.problem_class is None:
                node.problem_class = self._infer(graph, node.name)
            self._infer_nature(graph, node.name)
        return graph

    def _infer(self, graph: TaskGraph, name: str) -> ProblemClass:
        node = graph.task(name)
        if node.requirements.get("lockstep"):
            return ProblemClass.SYNCHRONOUS
        stream_arcs = [
            a for a in graph.arcs
            if a.kind is ArcKind.STREAM and name in (a.src, a.dst)
        ]
        if node.instances >= 4 and stream_arcs:
            # Wide, tightly-coupled data parallelism.
            return ProblemClass.SYNCHRONOUS
        if node.instances >= 2 and (graph.predecessors(name) or graph.successors(name)):
            # Phase-coupled data parallelism.
            return ProblemClass.LOOSELY_SYNCHRONOUS
        return self.default_class or ProblemClass.ASYNCHRONOUS

    def _infer_nature(self, graph: TaskGraph, name: str) -> None:
        node = graph.task(name)
        if node.local and TaskNature.GRAPHIC not in node.nature:
            # Tasks pinned to the user's workstation are typically the
            # display/interaction front end.
            node.nature |= TaskNature.INTERACTIVE
        total_volume = sum(
            a.volume for a in graph.arcs if name in (a.src, a.dst)
        )
        if node.work > 0 and total_volume > 100 * node.work:
            node.nature |= TaskNature.IO_INTENSIVE
        if node.work >= 100:
            node.nature |= TaskNature.COMPUTE_INTENSIVE

    @staticmethod
    def check_complete(graph: TaskGraph) -> None:
        """Raise unless every task has been classified."""
        missing = [t.name for t in graph if t.problem_class is None]
        if missing:
            raise TaskGraphError(
                f"design stage incomplete; unclassified tasks: {missing}"
            )
