"""The Software Development Module (SDM).

"The SDM consists of three layers, each of which is responsible for
attaching specific information to the task graph." (§3.1.1)

- :class:`ProblemSpecification` — "extracting the requirements of the
  problem to be solved and formalizing its functional flow ... by creating
  the initial task graph".
- :class:`DesignStage` — classifies each task by problem architecture
  (synchronous / loosely synchronous / asynchronous), "concentrat[ing] on
  the architecture of the problem and not the machine".
- :class:`CodingLevel` — attaches architecture-independent implementations
  (program bodies + language tags) and user hints.
- :class:`SoftwareDevelopmentModule` — runs the three layers in order and
  verifies the completed task graph carries everything the EXM needs.
"""

from repro.sdm.problemspec import ProblemSpecification
from repro.sdm.design import DesignStage
from repro.sdm.coding import CodingLevel, SourceModule
from repro.sdm.module import SoftwareDevelopmentModule

__all__ = [
    "ProblemSpecification",
    "DesignStage",
    "CodingLevel",
    "SourceModule",
    "SoftwareDevelopmentModule",
]
