"""Architecture-independent encoding costs.

Proxies "translate information into architecture independent form" (§4.2).
We model an XDR-like canonical encoding: :func:`wire_size` estimates the
encoded size of a Python value, and :func:`conversion_seconds` models the
CPU cost of converting to/from the canonical form (byte-order swaps,
word-size fixes) — charged by data-conversion interposers and proxies when
caller and callee architectures differ.
"""

from __future__ import annotations

from typing import Any

#: XDR pads everything to 4-byte units; headers cost one unit.
_UNIT = 4
_HEADER = 4


def wire_size(value: Any) -> int:
    """Estimated XDR-encoded size of *value* in bytes."""
    if value is None or isinstance(value, bool):
        return _UNIT
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        n = len(value.encode("utf-8"))
        return _HEADER + ((n + _UNIT - 1) // _UNIT) * _UNIT
    if isinstance(value, bytes):
        return _HEADER + ((len(value) + _UNIT - 1) // _UNIT) * _UNIT
    if isinstance(value, (list, tuple, set, frozenset)):
        return _HEADER + sum(wire_size(v) for v in value)
    if isinstance(value, dict):
        return _HEADER + sum(wire_size(k) + wire_size(v) for k, v in value.items())
    # unknown object: assume a pickled blob of its repr size
    return _HEADER + len(repr(value))


def conversion_seconds(size: int, seconds_per_byte: float = 1e-8) -> float:
    """CPU time to convert *size* bytes to/from canonical form (~100 MB/s
    by default, a generous 1994 marshalling rate)."""
    return size * seconds_per_byte
