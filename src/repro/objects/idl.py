"""A small OMG-IDL-flavoured interface definition language.

Grammar::

    idl       := interface*
    interface := "interface" NAME "{" method* "}"
    method    := NAME "(" params? ")" ("->" TYPE)? ";"
    params    := param ("," param)*
    param     := NAME ":" TYPE
    TYPE      := "int" | "float" | "string" | "bool" | "record" | "void"

Comments run from ``//`` to end of line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.util.errors import CommunicationError

VALID_TYPES = {"int", "float", "string", "bool", "record", "void"}


@dataclass(frozen=True, slots=True)
class Param:
    name: str
    type: str


@dataclass(frozen=True, slots=True)
class Method:
    name: str
    params: tuple[Param, ...] = ()
    returns: str = "void"

    @property
    def arity(self) -> int:
        return len(self.params)


@dataclass
class Interface:
    name: str
    methods: dict[str, Method] = field(default_factory=dict)

    def method(self, name: str) -> Method:
        try:
            return self.methods[name]
        except KeyError:
            raise CommunicationError(
                f"interface {self.name!r} has no method {name!r}"
            ) from None

    def check_call(self, name: str, args: tuple) -> Method:
        method = self.method(name)
        if len(args) != method.arity:
            raise CommunicationError(
                f"{self.name}.{name} takes {method.arity} arguments, got {len(args)}"
            )
        return method


_TOKEN = re.compile(
    r"\s*(?:(?P<word>[A-Za-z_][A-Za-z0-9_]*)|(?P<sym>[{}();:,]|->))"
)


def _tokenize(text: str) -> list[str]:
    text = re.sub(r"//[^\n]*", "", text)
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise CommunicationError(f"IDL: cannot tokenize near {remainder[:20]!r}")
        tokens.append(match.group("word") or match.group("sym"))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[str]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self, expected: str | None = None) -> str:
        token = self.peek()
        if token is None:
            raise CommunicationError("IDL: unexpected end of input")
        if expected is not None and token != expected:
            raise CommunicationError(f"IDL: expected {expected!r}, got {token!r}")
        self.pos += 1
        return token

    def parse(self) -> dict[str, Interface]:
        out: dict[str, Interface] = {}
        while self.peek() is not None:
            iface = self.interface()
            if iface.name in out:
                raise CommunicationError(f"IDL: duplicate interface {iface.name!r}")
            out[iface.name] = iface
        return out

    def interface(self) -> Interface:
        self.take("interface")
        name = self.take()
        iface = Interface(name)
        self.take("{")
        while self.peek() != "}":
            method = self.method()
            if method.name in iface.methods:
                raise CommunicationError(
                    f"IDL: duplicate method {name}.{method.name}"
                )
            iface.methods[method.name] = method
        self.take("}")
        return iface

    def method(self) -> Method:
        name = self.take()
        self.take("(")
        params: list[Param] = []
        if self.peek() != ")":
            while True:
                pname = self.take()
                self.take(":")
                ptype = self._type()
                params.append(Param(pname, ptype))
                if self.peek() == ",":
                    self.take(",")
                else:
                    break
        self.take(")")
        returns = "void"
        if self.peek() == "->":
            self.take("->")
            returns = self._type()
        self.take(";")
        return Method(name, tuple(params), returns)

    def _type(self) -> str:
        token = self.take()
        if token not in VALID_TYPES:
            raise CommunicationError(
                f"IDL: unknown type {token!r}; expected one of {sorted(VALID_TYPES)}"
            )
        return token


def parse_idl(text: str) -> dict[str, Interface]:
    """Parse IDL text into {interface name: Interface}."""
    return _Parser(_tokenize(text)).parse()
